// Package progs holds the paper's example programs and the synthetic
// workloads used by the benchmarks, the dfbench tool, and the runnable
// examples: the §3/Fig 2 scalar pipeline, the Fig 4 smoothing kernel, the
// Fig 5 conditional, Example 1 (Fig 6), Example 2 (Figs 7–8), their Fig 3
// composition, and a multi-block "weather-style" physics kernel in the
// spirit of the application codes the authors analyzed [7].
package progs

import (
	"fmt"
	"math"

	"staticpipe/internal/value"
)

// Program couples a Val source with matching synthetic inputs and the name
// of its primary output.
type Program struct {
	Name   string
	Source string
	Inputs map[string][]value.Value
	Output string
}

func reals(n int, f func(i int) float64) []value.Value {
	out := make([]value.Value, n)
	for i := range out {
		out[i] = value.R(f(i))
	}
	return out
}

// Fig2 is the §3 scalar pipeline example, lifted over n element pairs:
// let y = a*b in (y+2.)*(y-3.).
func Fig2(n int) Program {
	return Program{
		Name: "fig2",
		Source: fmt.Sprintf(`
param n = %d;
input A : array[real] [1, n];
input B : array[real] [1, n];
Y : array[real] :=
  forall i in [1, n]
    y : real := A[i]*B[i];
  construct (y + 2.)*(y - 3.)
  endall;
output Y;
`, n),
		Inputs: map[string][]value.Value{
			"A": reals(n, func(i int) float64 { return float64(i) * 0.5 }),
			"B": reals(n, func(i int) float64 { return 3 - float64(i)*0.25 }),
		},
		Output: "Y",
	}
}

// Fig4 is the array-selection expression of Fig 4:
// 0.25*(C[i-1] + 2.*C[i] + C[i+1]) over the interior indices.
func Fig4(m int) Program {
	return Program{
		Name: "fig4",
		Source: fmt.Sprintf(`
param m = %d;
input C : array[real] [0, m+1];
S : array[real] :=
  forall i in [1, m]
  construct 0.25 * (C[i-1] + 2.*C[i] + C[i+1])
  endall;
output S;
`, m),
		Inputs: map[string][]value.Value{
			"C": reals(m+2, func(i int) float64 { return math.Sin(float64(i) / 5) }),
		},
		Output: "S",
	}
}

// Fig5 is the §5 conditional example with a data-dependent condition.
func Fig5(n int) Program {
	return Program{
		Name: "fig5",
		Source: fmt.Sprintf(`
param n = %d;
input A : array[real] [1, n];
input B : array[real] [1, n];
input C : array[real] [1, n];
Y : array[real] :=
  forall i in [1, n]
  construct if C[i] > 0. then -(A[i] + B[i]) else 5.*(A[i]*B[i] + 2.) endif
  endall;
output Y;
`, n),
		Inputs: map[string][]value.Value{
			"A": reals(n, func(i int) float64 { return float64(i%11) - 5 }),
			"B": reals(n, func(i int) float64 { return float64(i%7) - 3 }),
			"C": reals(n, func(i int) float64 { return math.Cos(float64(i)) }),
		},
		Output: "Y",
	}
}

// Example1 is the paper's Example 1 (§4, compiled as Fig 6): boundary-
// conditioned smoothing followed by the B[i]*(P*P) accumulation.
func Example1(m int) Program {
	return Program{
		Name: "example1",
		Source: fmt.Sprintf(`
param m = %d;
input B : array[real] [0, m+1];
input C : array[real] [0, m+1];
A : array[real] :=
  forall i in [0, m+1]
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
  construct B[i]*(P*P)
  endall;
output A;
`, m),
		Inputs: map[string][]value.Value{
			"B": reals(m+2, func(i int) float64 { return 1 + float64(i%5)/5 }),
			"C": reals(m+2, func(i int) float64 { return math.Sin(float64(i) / 3) }),
		},
		Output: "A",
	}
}

// Example2 is the paper's Example 2 (§4, compiled as Fig 7 or Fig 8): the
// first-order linear recurrence x_i = A_i·x_{i−1} + B_i.
func Example2(m int) Program {
	return Program{
		Name: "example2",
		Source: fmt.Sprintf(`
param m = %d;
input A : array[real] [1, m];
input B : array[real] [1, m];
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.]
  do
    let P : real := A[i]*T[i-1] + B[i]
    in if i < m then iter T := T[i: P]; i := i + 1 enditer
       else T[i: P] endif
    endlet
  endfor;
output X;
`, m),
		Inputs: map[string][]value.Value{
			"A": reals(m, func(i int) float64 { return 0.4 + 0.5*math.Sin(float64(i)) }),
			"B": reals(m, func(i int) float64 { return float64(i%6) - 2.5 }),
		},
		Output: "X",
	}
}

// Fig3 composes Example 1 and Example 2 into the pipe-structured program
// of Fig 3 (the Theorem 4 workload).
func Fig3(m int) Program {
	return Program{
		Name: "fig3",
		Source: fmt.Sprintf(`
param m = %d;
input B : array[real] [0, m+1];
input C : array[real] [0, m+1];
A : array[real] :=
  forall i in [0, m+1]
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
  construct B[i]*(P*P)
  endall;
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.]
  do
    let P : real := A[i]*T[i-1] + B[i]
    in if i < m then iter T := T[i: P]; i := i + 1 enditer
       else T[i: P] endif
    endlet
  endfor;
output X;
`, m),
		Inputs: map[string][]value.Value{
			"B": reals(m+2, func(i int) float64 { return 0.1 + float64(i%4)/10 }),
			"C": reals(m+2, func(i int) float64 { return math.Cos(float64(i) / 4) }),
		},
		Output: "X",
	}
}

// Weather is a multi-block 1-D advection–diffusion time step in the spirit
// of the application codes the authors analyzed [7]: smoothing, upwind
// flux, limiter, an implicit-sweep recurrence, and a final update — five
// blocks in an acyclic flow dependency graph, all primitive.
func Weather(m int) Program {
	return Program{
		Name: "weather",
		Source: fmt.Sprintf(`
param m = %d;
input U  : array[real] [0, m+1];   %% field at time t
input K  : array[real] [0, m+1];   %% diffusivity
D : array[real] :=                 %% diffusion term
  forall i in [1, m]
  construct K[i] * (U[i-1] - 2.*U[i] + U[i+1])
  endall;
F : array[real] :=                 %% upwind advective flux
  forall i in [1, m]
  construct if U[i] > 0. then U[i]*(U[i] - U[i-1]) else U[i]*(U[i+1] - U[i]) endif
  endall;
L : array[real] :=                 %% flux limiter
  forall i in [1, m]
  construct min(max(F[i], -0.5), 0.5)
  endall;
S : array[real] :=                 %% implicit sweep: s_i = 0.25 s_{i-1} + (D_i - L_i)
  for i : integer := 1; T : array[real] := [0: 0.]
  do
    if i < m then iter T := T[i: 0.25*T[i-1] + (D[i] - L[i])]; i := i + 1 enditer
    else T[i: 0.25*T[i-1] + (D[i] - L[i])] endif
  endfor;
V : array[real] :=                 %% updated field
  forall i in [1, m]
  construct U[i] + 0.1 * S[i]
  endall;
output V;
`, m),
		// A rapidly oscillating field keeps both arms of the upwind
		// conditional continuously busy — the steady-state regime in which
		// the Fig 5 construction reaches the maximum rate. (A slowly
		// varying field still computes correctly but pays an arm-pipeline
		// refill bubble at each sign change.)
		Inputs: map[string][]value.Value{
			"U": reals(m+2, func(i int) float64 { return math.Sin(float64(i) * 1.7) }),
			"K": reals(m+2, func(i int) float64 { return 0.1 + 0.05*math.Cos(float64(i)) }),
		},
		Output: "V",
	}
}

// Synth produces a deterministic synthetic input stream of the requested
// shape; the dfc and dfsim tools use it to fill declared inputs.
func Synth(kind string, n int) []value.Value {
	out := make([]value.Value, n)
	for i := range out {
		switch kind {
		case "sin":
			out[i] = value.R(math.Sin(float64(i) / 3))
		case "const":
			out[i] = value.R(1)
		case "alt":
			out[i] = value.R(float64(1 - 2*(i%2)))
		default: // ramp
			out[i] = value.R(float64(i))
		}
	}
	return out
}
