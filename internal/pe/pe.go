// Package pe classifies and compiles the paper's primitive expressions
// (§5, Theorem 1): the restricted Val expressions — literals, scalar
// identifiers, operator applications, array element selections A[i±k],
// let-in, and if-then-else — that admit fully pipelined acyclic instruction
// graphs.
//
// Compilation follows the constructions of Figs 4–5:
//
//   - an array reference A[i+k] becomes a boolean-gated selection of the
//     needed window of the array's element stream, discarding unused
//     elements "so they do not cause jams";
//   - a conditional routes each arm's input streams through T/F gates
//     controlled by the condition stream and recombines the arm results
//     with a MERGE cell;
//   - conditions (and selection windows) that depend only on the index
//     variable and compile-time constants are evaluated at compile time
//     into Todd-style control patterns, exactly as the paper's figures
//     show precomputed <FT..TF> streams rather than runtime comparisons.
//
// The emitted graph is not yet balanced; callers apply package balance to
// obtain the fully pipelined form (Theorem 1's FIFO insertion).
package pe

import (
	"fmt"

	"staticpipe/internal/graph"
	"staticpipe/internal/val"
	"staticpipe/internal/value"
)

// NotPrimitiveError reports that an expression falls outside the primitive
// class of §5 and why.
type NotPrimitiveError struct {
	Pos    val.Pos
	Reason string
}

func (e *NotPrimitiveError) Error() string {
	return fmt.Sprintf("pe: %s: not a primitive expression: %s", e.Pos, e.Reason)
}

func notPrim(p val.Pos, format string, args ...any) error {
	return &NotPrimitiveError{Pos: p, Reason: fmt.Sprintf(format, args...)}
}

// Result is the outcome of compiling a (sub)expression: either a stream-
// producing cell or a compile-time constant (which parents embed as a
// literal operand — the static architecture stores constants in instruction
// cells).
type Result struct {
	Node  *graph.Node
	Const *value.Value
}

// IsConst reports whether the result is a compile-time constant.
func (r Result) IsConst() bool { return r.Const != nil }

// Options configures compilation.
type Options struct {
	// LiteralControl emits control streams and index streams as literal
	// instruction subgraphs (package control's counter/alternator
	// constructions) instead of idealized generator cells. The literal
	// subgraphs leave residual tokens at quiescence (see control.Alternator).
	LiteralControl bool
	// ArmSlack pads both arms of each data-dependent conditional with a
	// FIFO of this many stages. The one-token-per-arc discipline gives a
	// conditional arm no room to queue a run of same-branch tokens; when a
	// conditional block feeds a deep consumer, such runs briefly
	// backpressure the shared input streams. Equal-length arm FIFOs add
	// that elasticity without disturbing balance.
	ArmSlack int
}

// binding is a named stream or constant visible to the expression being
// compiled.
type binding struct {
	node  *graph.Node
	konst *value.Value
	depth int // selection depth at which the stream was produced
}

// selLayer is one enclosing conditional arm: streams crossing into the arm
// are gated by ctl with the given polarity. If the selected index
// subsequence is statically known it is recorded for pattern fusion.
type selLayer struct {
	ctl  *graph.Node
	keep bool
	idxs []int64 // nil when the condition is data-dependent
}

// arrayInfo is a bound input array stream. Two-dimensional arrays (w > 0)
// arrive row-major over [lo,hi]×[lo2,lo2+w−1].
type arrayInfo struct {
	src    *graph.Node
	lo, hi int64
	lo2    int64
	w      int64 // second-dimension width; 0 = one-dimensional
}

func (a arrayInfo) total() int64 {
	n := a.hi - a.lo + 1
	if a.w > 0 {
		n *= a.w
	}
	return n
}

// Builder compiles primitive expressions over a fixed iteration space —
// one index variable, or two for the §9 two-dimensional extension (the
// space is then traversed row-major). Internally the space is a sequence
// of positions p = 0..N−1 from which the index values derive.
type Builder struct {
	G        *graph.Graph
	indexVar string
	lo, hi   int64
	// second index variable ("" when one-dimensional)
	indexVar2 string
	lo2, hi2  int64

	params map[string]int64
	opts   Options

	arrays  map[string]arrayInfo
	scalars map[string]binding
	sel     []selLayer
}

// NewBuilder returns a builder for primitive expressions on indexVar, with
// the index ranging lo..hi. params supplies compile-time constants.
func NewBuilder(g *graph.Graph, indexVar string, lo, hi int64, params map[string]int64, opts Options) *Builder {
	if hi < lo {
		panic(fmt.Sprintf("pe: empty iteration space [%d, %d]", lo, hi))
	}
	return &Builder{
		G: g, indexVar: indexVar, lo: lo, hi: hi,
		params:  params,
		opts:    opts,
		arrays:  map[string]arrayInfo{},
		scalars: map[string]binding{},
	}
}

// NewBuilder2 returns a builder over the two-dimensional iteration space
// [lo,hi]×[lo2,hi2], traversed row-major (iv varies slowest).
func NewBuilder2(g *graph.Graph, iv string, lo, hi int64, iv2 string, lo2, hi2 int64,
	params map[string]int64, opts Options) *Builder {
	if hi < lo || hi2 < lo2 {
		panic(fmt.Sprintf("pe: empty iteration space [%d, %d]×[%d, %d]", lo, hi, lo2, hi2))
	}
	if iv == iv2 {
		panic("pe: the two index variables must differ")
	}
	b := NewBuilder(g, iv, lo, hi, params, opts)
	b.indexVar2 = iv2
	b.lo2, b.hi2 = lo2, hi2
	return b
}

// rows and cols describe the iteration space; cols is 1 when 1-D.
func (b *Builder) rows() int64 { return b.hi - b.lo + 1 }
func (b *Builder) cols() int64 {
	if b.indexVar2 == "" {
		return 1
	}
	return b.hi2 - b.lo2 + 1
}

// N returns the iteration count.
func (b *Builder) N() int { return int(b.rows() * b.cols()) }

// ivAt returns the index values at iteration position p.
func (b *Builder) ivAt(p int64) (i, j int64) {
	if b.indexVar2 == "" {
		return b.lo + p, 0
	}
	c := b.cols()
	return b.lo + p/c, b.lo2 + p%c
}

// BindArray makes an array's element stream (indices alo..ahi arriving in
// order from src) available to references A[i±k].
func (b *Builder) BindArray(name string, src *graph.Node, alo, ahi int64) {
	b.arrays[name] = arrayInfo{src: src, lo: alo, hi: ahi}
}

// BindArray2 makes a two-dimensional array's row-major element stream
// available to references A[i±k, j±l].
func (b *Builder) BindArray2(name string, src *graph.Node, alo, ahi, alo2, ahi2 int64) {
	b.arrays[name] = arrayInfo{src: src, lo: alo, hi: ahi, lo2: alo2, w: ahi2 - alo2 + 1}
}

// BindScalar makes a per-iteration scalar stream available under name.
func (b *Builder) BindScalar(name string, src *graph.Node) {
	b.scalars[name] = binding{node: src, depth: len(b.sel)}
}

// curIdxs returns the iteration positions (0..N−1 based) selected by the
// current layers, or nil if any enclosing condition is data-dependent.
func (b *Builder) curIdxs() []int64 {
	if len(b.sel) == 0 {
		out := make([]int64, b.N())
		for p := range out {
			out[p] = int64(p)
		}
		return out
	}
	return b.sel[len(b.sel)-1].idxs
}

// Compile translates a primitive expression into the graph, returning its
// stream (or constant). It returns a *NotPrimitiveError for expressions
// outside the §5 class.
func (b *Builder) Compile(e val.Expr) (Result, error) {
	switch x := e.(type) {
	case *val.IntLit:
		v := value.I(x.Val)
		return Result{Const: &v}, nil
	case *val.RealLit:
		v := value.R(x.F)
		return Result{Const: &v}, nil
	case *val.BoolLit:
		v := value.B(x.Val)
		return Result{Const: &v}, nil

	case *val.Name:
		if x.Ident == b.indexVar {
			return Result{Node: b.indexStream(1)}, nil
		}
		if b.indexVar2 != "" && x.Ident == b.indexVar2 {
			return Result{Node: b.indexStream(2)}, nil
		}
		if v, ok := b.params[x.Ident]; ok {
			c := value.I(v)
			return Result{Const: &c}, nil
		}
		if bind, ok := b.scalars[x.Ident]; ok {
			if bind.konst != nil {
				return Result{Const: bind.konst}, nil
			}
			return Result{Node: b.applySel(bind.node, bind.depth)}, nil
		}
		if _, isArr := b.arrays[x.Ident]; isArr {
			return Result{}, notPrim(x.Pos(), "array %s used without a subscript", x.Ident)
		}
		return Result{}, notPrim(x.Pos(), "unbound identifier %s", x.Ident)

	case *val.Unary:
		in, err := b.Compile(x.E)
		if err != nil {
			return Result{}, err
		}
		if in.IsConst() {
			v, err := foldUnary(x.Op, *in.Const)
			if err != nil {
				return Result{}, notPrim(x.Pos(), "%v", err)
			}
			return Result{Const: &v}, nil
		}
		op, ok := unaryOp(x.Op)
		if !ok {
			return Result{}, notPrim(x.Pos(), "unary operator %s unsupported", x.Op)
		}
		n := b.G.Add(op, "")
		b.connect(in, n, 0)
		return Result{Node: n}, nil

	case *val.Binary:
		l, err := b.Compile(x.L)
		if err != nil {
			return Result{}, err
		}
		r, err := b.Compile(x.R)
		if err != nil {
			return Result{}, err
		}
		if l.IsConst() && r.IsConst() {
			v, err := val.ApplyBinary(x.Op, *l.Const, *r.Const)
			if err != nil {
				return Result{}, notPrim(x.Pos(), "%v", err)
			}
			return Result{Const: &v}, nil
		}
		op, ok := binaryOp(x.Op)
		if !ok {
			return Result{}, notPrim(x.Pos(), "operator %s unsupported", x.Op)
		}
		n := b.G.Add(op, "")
		b.connect(l, n, 0)
		b.connect(r, n, 1)
		return Result{Node: n}, nil

	case *val.Index:
		return b.compileArrayRef(x)

	case *val.Let:
		saved := map[string]*binding{}
		for _, d := range x.Defs {
			r, err := b.Compile(d.Init)
			if err != nil {
				return Result{}, err
			}
			// Remember any shadowed binding for restoration.
			if old, ok := b.scalars[d.Name]; ok {
				o := old
				saved[d.Name] = &o
			} else {
				saved[d.Name] = nil
			}
			// Constant definitions stay constants (literal operands at
			// their uses); only stream-producing definitions bind nodes.
			if r.IsConst() {
				b.scalars[d.Name] = binding{konst: r.Const, depth: len(b.sel)}
			} else {
				b.scalars[d.Name] = binding{node: r.Node, depth: len(b.sel)}
			}
		}
		res, err := b.Compile(x.Body)
		for name, old := range saved {
			if old == nil {
				delete(b.scalars, name)
			} else {
				b.scalars[name] = *old
			}
		}
		return res, err

	case *val.If:
		return b.compileIf(x)

	case *val.Forall:
		return Result{}, notPrim(x.Pos(), "nested forall")
	case *val.ForIter:
		return Result{}, notPrim(x.Pos(), "nested for-iter")
	case *val.Append, *val.ArrayInit:
		return Result{}, notPrim(e.Pos(), "array constructor operation")
	case *val.Iter:
		return Result{}, notPrim(x.Pos(), "iter clause")
	default:
		return Result{}, notPrim(e.Pos(), "unsupported form %T", e)
	}
}

// CompileStream compiles e and forces the result to a stream-producing
// node: a constant becomes a generator emitting the constant once per
// (selected) iteration.
func (b *Builder) CompileStream(e val.Expr) (*graph.Node, error) {
	r, err := b.Compile(e)
	if err != nil {
		return nil, err
	}
	return b.materialize(r, ""), nil
}

// materialize turns a Result into a node. It is only reachable at
// statically known selection depths (let definitions bind constants as
// constants, and a constant if-condition selects its arm directly), so the
// stream count is always known.
func (b *Builder) materialize(r Result, label string) *graph.Node {
	if !r.IsConst() {
		return r.Node
	}
	idxs := b.curIdxs()
	if idxs == nil {
		panic("pe: internal error: constant stream under data-dependent selection")
	}
	stream := make([]value.Value, len(idxs))
	for i := range stream {
		stream[i] = *r.Const
	}
	return b.G.AddSource("const:"+label, stream)
}

// connect wires a result into port p of node n (literal or arc).
func (b *Builder) connect(r Result, n *graph.Node, p int) {
	if r.IsConst() {
		b.G.SetLiteral(n, p, *r.Const)
		return
	}
	b.G.Connect(r.Node, n, p)
}

// ivValues maps iteration positions to the values of index variable dim.
func (b *Builder) ivValues(positions []int64, dim int) []int64 {
	out := make([]int64, len(positions))
	for k, p := range positions {
		i, j := b.ivAt(p)
		if dim == 1 {
			out[k] = i
		} else {
			out[k] = j
		}
	}
	return out
}

func (b *Builder) ivName(dim int) string {
	if dim == 2 {
		return b.indexVar2
	}
	return b.indexVar
}

// indexStream returns a stream of an index variable's selected values.
func (b *Builder) indexStream(dim int) *graph.Node {
	idxs := b.curIdxs()
	if idxs == nil {
		// Data-dependent selection: produce the base stream at depth 0 and
		// gate it through the layers.
		base := b.baseIndexStream(dim)
		return b.applySel(base, 0)
	}
	vals := b.ivValues(idxs, dim)
	if b.opts.LiteralControl && contiguous(vals) {
		return literalIndexStream(b.G, vals)
	}
	return b.G.AddSource(fmt.Sprintf("i:%s", b.ivName(dim)), value.Ints(vals))
}

// baseIndexStream emits the full unselected value sequence of variable dim.
func (b *Builder) baseIndexStream(dim int) *graph.Node {
	positions := make([]int64, b.N())
	for p := range positions {
		positions[p] = int64(p)
	}
	vals := b.ivValues(positions, dim)
	if b.opts.LiteralControl && contiguous(vals) {
		return literalIndexStream(b.G, vals)
	}
	return b.G.AddSource(fmt.Sprintf("i:%s", b.ivName(dim)), value.Ints(vals))
}

func contiguous(idxs []int64) bool {
	for i := 1; i < len(idxs); i++ {
		if idxs[i] != idxs[i-1]+1 {
			return false
		}
	}
	return len(idxs) > 0
}

// applySel gates a stream produced at the given depth through the enclosing
// selection layers so it arrives on the current subsequence.
func (b *Builder) applySel(node *graph.Node, fromDepth int) *graph.Node {
	for d := fromDepth; d < len(b.sel); d++ {
		layer := b.sel[d]
		op := graph.OpTGate
		if !layer.keep {
			op = graph.OpFGate
		}
		gate := b.G.Add(op, "sel")
		b.G.Connect(layer.ctl, gate, 0)
		b.G.Connect(node, gate, 1)
		node = gate
	}
	return node
}

// compileArrayRef compiles A[i+k] (or A[i+k, j+l] for two-dimensional
// arrays) into a gated window selection of A's element stream (Fig 4).
// When every enclosing condition is static the window and the conditions
// fuse into a single selection pattern.
func (b *Builder) compileArrayRef(x *val.Index) (Result, error) {
	info, ok := b.arrays[x.Array]
	if !ok {
		if _, isScalar := b.scalars[x.Array]; isScalar {
			return Result{}, notPrim(x.Pos(), "%s is not an array", x.Array)
		}
		return Result{}, notPrim(x.Pos(), "unbound array %s", x.Array)
	}
	twoDRef := x.Sub2 != nil
	if twoDRef != (info.w > 0) {
		return Result{}, notPrim(x.Pos(), "subscript count does not match the rank of %s", x.Array)
	}
	if twoDRef && b.indexVar2 == "" {
		return Result{}, notPrim(x.Pos(), "two-dimensional reference outside a two-dimensional forall")
	}
	if !twoDRef && b.indexVar2 != "" {
		// A vector reference inside a 2-D iteration would require each
		// element to be replicated across a row — a broadcast, not a
		// selection; outside the implemented subset.
		return Result{}, notPrim(x.Pos(), "one-dimensional array %s referenced inside a two-dimensional forall", x.Array)
	}
	k, ok := b.offsetOf(x.Sub, b.indexVar)
	if !ok {
		return Result{}, notPrim(x.Sub.Pos(), "subscript must have the form %s±constant", b.indexVar)
	}
	var l int64
	if twoDRef {
		if l, ok = b.offsetOf(x.Sub2, b.indexVar2); !ok {
			return Result{}, notPrim(x.Sub2.Pos(), "subscript must have the form %s±constant", b.indexVar2)
		}
	}

	// streamPos maps iteration position p to the referenced element's
	// position in A's stream, or an error when out of range.
	streamPos := func(p int64) (int64, error) {
		i, j := b.ivAt(p)
		if !twoDRef {
			a := i + k
			if a < info.lo || a > info.hi {
				return 0, notPrim(x.Pos(), "%s[%s%+d] reaches index %d outside the array's range [%d, %d]",
					x.Array, b.indexVar, k, a, info.lo, info.hi)
			}
			return a - info.lo, nil
		}
		ai, aj := i+k, j+l
		hi2 := info.lo2 + info.w - 1
		if ai < info.lo || ai > info.hi || aj < info.lo2 || aj > hi2 {
			return 0, notPrim(x.Pos(), "%s[%s%+d, %s%+d] reaches (%d, %d) outside [%d, %d]×[%d, %d]",
				x.Array, b.indexVar, k, b.indexVar2, l, ai, aj, info.lo, info.hi, info.lo2, hi2)
		}
		return (ai-info.lo)*info.w + (aj - info.lo2), nil
	}
	label := fmt.Sprintf("%s[%s%+d]", x.Array, b.indexVar, k)
	if twoDRef {
		label = fmt.Sprintf("%s[%s%+d,%s%+d]", x.Array, b.indexVar, k, b.indexVar2, l)
	}

	idxs := b.curIdxs()
	positions := idxs
	dynamic := idxs == nil
	if dynamic {
		// Dynamic enclosing selection: select the full base window first,
		// then gate through the dynamic layers like any other stream.
		positions = make([]int64, b.N())
		for p := range positions {
			positions[p] = int64(p)
		}
	}
	pattern := make([]bool, info.total())
	for _, p := range positions {
		sp, err := streamPos(p)
		if err != nil {
			return Result{}, err
		}
		pattern[sp] = true
	}
	gate := b.G.Add(graph.OpTGate, label)
	b.G.Connect(b.ctlStream(pattern, gate.Label), gate, 0)
	data := b.G.Connect(info.src, gate, 1)
	// The gate's output for iteration wave p comes from array stream
	// position p + shift: record the grid skew for balancing, evaluated at
	// the base position without range checks (a sparse selection may not
	// include position 0, but the uniform shift is what balancing needs).
	// For two-dimensional windows the shift is taken at the first
	// position; references into equal-width arrays share the residual
	// row-boundary jitter, so their relative skews stay exact.
	i0, j0 := b.ivAt(0)
	if twoDRef {
		data.Skew = int((i0+k-info.lo)*info.w + (j0 + l - info.lo2))
	} else {
		data.Skew = int(i0 + k - info.lo)
	}
	if dynamic {
		return Result{Node: b.applySel(gate, 0)}, nil
	}
	return Result{Node: gate}, nil
}

// ctlStream emits a boolean control stream for the given pattern, either as
// an idealized generator cell or as a literal comparison subgraph.
func (b *Builder) ctlStream(pattern []bool, label string) *graph.Node {
	if !b.opts.LiteralControl {
		return b.G.AddCtl("ctl:"+label, packPattern(pattern))
	}
	return literalPattern(b.G, pattern, label)
}

// packPattern compresses a boolean slice into prefix/body/suffix run form
// where profitable (pure cosmetics for DOT output; At() behaves the same).
func packPattern(bs []bool) graph.Pattern {
	return graph.Pattern{Prefix: append([]bool(nil), bs...)}
}

// offsetOf recognizes subscripts of the form v, v+c, v-c, c+v for the
// given index variable (rule 4 of the §5 definition), returning the
// constant offset.
func (b *Builder) offsetOf(e val.Expr, iv string) (int64, bool) {
	switch x := e.(type) {
	case *val.Name:
		if x.Ident == iv {
			return 0, true
		}
	case *val.Binary:
		if x.Op != val.OpAdd && x.Op != val.OpSub {
			return 0, false
		}
		if n, ok := x.L.(*val.Name); ok && n.Ident == iv {
			if c, err := val.EvalConst(x.R, b.params); err == nil {
				if x.Op == val.OpSub {
					return -c, true
				}
				return c, true
			}
		}
		if x.Op == val.OpAdd {
			if n, ok := x.R.(*val.Name); ok && n.Ident == iv {
				if c, err := val.EvalConst(x.L, b.params); err == nil {
					return c, true
				}
			}
		}
	}
	return 0, false
}

// compileIf compiles a conditional per Fig 5: gates on each arm's stream
// inputs and a MERGE recombining the results. Conditions over the index
// variable and constants are evaluated at compile time into control
// patterns.
func (b *Builder) compileIf(x *val.If) (Result, error) {
	idxs := b.curIdxs()
	var (
		ctl      *graph.Node
		thenIdxs []int64
		elseIdxs []int64
	)
	if bools, ok := b.staticBools(x.Cond, idxs); ok {
		ctl = b.ctlStream(bools, "cond")
		// Non-nil even when empty: an arm selected for no index at all is
		// still statically known (its gates discard everything), which is
		// distinct from a data-dependent selection (nil).
		thenIdxs = []int64{}
		elseIdxs = []int64{}
		for j, keep := range bools {
			if keep {
				thenIdxs = append(thenIdxs, idxs[j])
			} else {
				elseIdxs = append(elseIdxs, idxs[j])
			}
		}
	} else {
		cr, err := b.Compile(x.Cond)
		if err != nil {
			return Result{}, err
		}
		if cr.IsConst() {
			// A constant condition selects one arm outright; no gating.
			if cr.Const.AsBool() {
				return b.Compile(x.Then)
			}
			return b.Compile(x.Else)
		}
		ctl = cr.Node
	}

	compileArm := func(arm val.Expr, keep bool, armIdxs []int64) (Result, error) {
		// Constant arms stay literal merge operands; only stream-producing
		// arms need a selection layer.
		b.sel = append(b.sel, selLayer{ctl: ctl, keep: keep, idxs: armIdxs})
		defer func() { b.sel = b.sel[:len(b.sel)-1] }()
		return b.Compile(arm)
	}

	thenR, err := compileArm(x.Then, true, thenIdxs)
	if err != nil {
		return Result{}, err
	}
	elseR, err := compileArm(x.Else, false, elseIdxs)
	if err != nil {
		return Result{}, err
	}

	// Arm elasticity: pad both data-dependent arms with equal FIFOs so a
	// run of same-branch tokens can queue without backpressuring the
	// shared input streams. Equal padding preserves balance (the balancer
	// extends the control path to match); static conditions need none —
	// their token placement is known at compile time and the balancer's
	// wave schedule is exact.
	if b.opts.ArmSlack > 0 && thenIdxs == nil {
		pad := func(r Result) Result {
			if r.IsConst() {
				return r
			}
			f := b.G.AddFIFO("armslack", b.opts.ArmSlack)
			b.G.Connect(r.Node, f, 0)
			return Result{Node: f}
		}
		thenR = pad(thenR)
		elseR = pad(elseR)
	}

	merge := b.G.Add(graph.OpMerge, "if")
	b.G.Connect(ctl, merge, 0)
	b.connect(thenR, merge, 1)
	b.connect(elseR, merge, 2)
	return Result{Node: merge}, nil
}

// staticBools evaluates a condition at compile time for each iteration
// position in idxs. It succeeds only when the condition involves nothing
// but the index variables, parameters, and literals.
func (b *Builder) staticBools(e val.Expr, idxs []int64) ([]bool, bool) {
	if idxs == nil || !b.staticExpr(e) {
		return nil, false
	}
	out := make([]bool, len(idxs))
	for k, p := range idxs {
		v, err := b.evalStatic(e, p)
		if err != nil || v.Kind() != value.Bool {
			return nil, false
		}
		out[k] = v.AsBool()
	}
	return out, true
}

// staticExpr reports whether e references only the index variables,
// parameters, and literals.
func (b *Builder) staticExpr(e val.Expr) bool {
	switch x := e.(type) {
	case *val.IntLit, *val.RealLit, *val.BoolLit:
		return true
	case *val.Name:
		if x.Ident == b.indexVar || (b.indexVar2 != "" && x.Ident == b.indexVar2) {
			return true
		}
		_, isParam := b.params[x.Ident]
		return isParam
	case *val.Unary:
		return b.staticExpr(x.E)
	case *val.Binary:
		return b.staticExpr(x.L) && b.staticExpr(x.R)
	case *val.If:
		return b.staticExpr(x.Cond) && b.staticExpr(x.Then) && b.staticExpr(x.Else)
	default:
		return false
	}
}

// evalStatic evaluates a static expression at iteration position p, with
// the index variables bound to their values there.
func (b *Builder) evalStatic(e val.Expr, p int64) (value.Value, error) {
	switch x := e.(type) {
	case *val.IntLit:
		return value.I(x.Val), nil
	case *val.RealLit:
		return value.R(x.F), nil
	case *val.BoolLit:
		return value.B(x.Val), nil
	case *val.Name:
		i, j := b.ivAt(p)
		if x.Ident == b.indexVar {
			return value.I(i), nil
		}
		if b.indexVar2 != "" && x.Ident == b.indexVar2 {
			return value.I(j), nil
		}
		if v, ok := b.params[x.Ident]; ok {
			return value.I(v), nil
		}
		return value.Value{}, fmt.Errorf("non-static name %s", x.Ident)
	case *val.Unary:
		v, err := b.evalStatic(x.E, p)
		if err != nil {
			return value.Value{}, err
		}
		return foldUnary(x.Op, v)
	case *val.Binary:
		l, err := b.evalStatic(x.L, p)
		if err != nil {
			return value.Value{}, err
		}
		r, err := b.evalStatic(x.R, p)
		if err != nil {
			return value.Value{}, err
		}
		return val.ApplyBinary(x.Op, l, r)
	case *val.If:
		c, err := b.evalStatic(x.Cond, p)
		if err != nil {
			return value.Value{}, err
		}
		if c.AsBool() {
			return b.evalStatic(x.Then, p)
		}
		return b.evalStatic(x.Else, p)
	default:
		return value.Value{}, fmt.Errorf("non-static expression %T", e)
	}
}

func foldUnary(op val.Op, v value.Value) (value.Value, error) {
	switch op {
	case val.OpNeg:
		return value.Neg(v), nil
	case val.OpAbs:
		return value.Abs(v), nil
	case val.OpNot:
		return value.Not(v), nil
	default:
		return value.Value{}, fmt.Errorf("bad unary operator %s", op)
	}
}

func unaryOp(op val.Op) (graph.Op, bool) {
	switch op {
	case val.OpNeg:
		return graph.OpNeg, true
	case val.OpAbs:
		return graph.OpAbs, true
	case val.OpNot:
		return graph.OpNot, true
	}
	return graph.OpInvalid, false
}

func binaryOp(op val.Op) (graph.Op, bool) {
	switch op {
	case val.OpAdd:
		return graph.OpAdd, true
	case val.OpSub:
		return graph.OpSub, true
	case val.OpMul:
		return graph.OpMul, true
	case val.OpDiv:
		return graph.OpDiv, true
	case val.OpMin:
		return graph.OpMin, true
	case val.OpMax:
		return graph.OpMax, true
	case val.OpLT:
		return graph.OpLT, true
	case val.OpLE:
		return graph.OpLE, true
	case val.OpGT:
		return graph.OpGT, true
	case val.OpGE:
		return graph.OpGE, true
	case val.OpEQ:
		return graph.OpEQ, true
	case val.OpNE:
		return graph.OpNE, true
	case val.OpAnd:
		return graph.OpAnd, true
	case val.OpOr:
		return graph.OpOr, true
	}
	return graph.OpInvalid, false
}

// Classify checks whether e is a primitive expression on indexVar per the
// §5 definition, without building a graph. arrays and scalars list the
// names in scope; params the compile-time constants. A nil return means
// primitive.
func Classify(e val.Expr, indexVar string, params map[string]int64, arrays, scalars map[string]bool) error {
	c := &classifier{iv: indexVar, params: params, arrays: arrays, scalars: cloneSet(scalars)}
	return c.walk(e)
}

type classifier struct {
	iv      string
	params  map[string]int64
	arrays  map[string]bool
	scalars map[string]bool
}

func cloneSet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func (c *classifier) walk(e val.Expr) error {
	switch x := e.(type) {
	case *val.IntLit, *val.RealLit, *val.BoolLit:
		return nil
	case *val.Name:
		if x.Ident == c.iv || c.scalars[x.Ident] {
			return nil
		}
		if _, ok := c.params[x.Ident]; ok {
			return nil
		}
		if c.arrays[x.Ident] {
			return notPrim(x.Pos(), "array %s used without a subscript", x.Ident)
		}
		return notPrim(x.Pos(), "unbound identifier %s", x.Ident)
	case *val.Unary:
		return c.walk(x.E)
	case *val.Binary:
		if err := c.walk(x.L); err != nil {
			return err
		}
		return c.walk(x.R)
	case *val.Index:
		if !c.arrays[x.Array] {
			return notPrim(x.Pos(), "%s is not a bound array", x.Array)
		}
		if x.Sub2 != nil {
			return notPrim(x.Pos(), "two-dimensional reference (classify with the 2-D compiler)")
		}
		b := &Builder{indexVar: c.iv, params: c.params}
		if _, ok := b.offsetOf(x.Sub, c.iv); !ok {
			return notPrim(x.Sub.Pos(), "subscript must have the form %s±constant", c.iv)
		}
		return nil
	case *val.Let:
		for _, d := range x.Defs {
			if err := c.walk(d.Init); err != nil {
				return err
			}
			c.scalars[d.Name] = true
		}
		return c.walk(x.Body)
	case *val.If:
		for _, sub := range []val.Expr{x.Cond, x.Then, x.Else} {
			if err := c.walk(sub); err != nil {
				return err
			}
		}
		return nil
	case *val.Forall:
		return notPrim(x.Pos(), "nested forall")
	case *val.ForIter:
		return notPrim(x.Pos(), "nested for-iter")
	case *val.Append, *val.ArrayInit:
		return notPrim(e.Pos(), "array constructor operation")
	default:
		return notPrim(e.Pos(), "unsupported form %T", e)
	}
}
