package pe

import (
	"testing"

	"staticpipe/internal/balance"
	"staticpipe/internal/exec"
	"staticpipe/internal/graph"
	"staticpipe/internal/val"
	"staticpipe/internal/value"
)

// compileRun2D compiles src over [lo,hi]×[lo2,hi2] with one 2-D array "U"
// of the given shape.
func compileRun2D(t *testing.T, src string, lo, hi, lo2, hi2 int64,
	uLo, uHi, uLo2, uHi2 int64, uVals []float64, opts Options) *exec.Result {
	t.Helper()
	e, err := val.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	b := NewBuilder2(g, "i", lo, hi, "j", lo2, hi2, nil, opts)
	srcN := g.AddSource("U", value.Reals(uVals))
	b.BindArray2("U", srcN, uLo, uHi, uLo2, uHi2)
	out, err := b.CompileStream(e)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	g.Connect(out, g.AddSink("out"), 0)
	if _, err := balance.Balance(g); err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(g, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTwoDBuilderStencil(t *testing.T) {
	// 4x5 interior of a 6x7 grid: U[i-1,j] + U[i+1,j] + i - j.
	w := int64(7)
	vals := make([]float64, 6*7)
	for i := range vals {
		vals[i] = float64(i)
	}
	res := compileRun2D(t, "U[i-1, j] + U[i+1, j] + i - j",
		1, 4, 1, 5, 0, 5, 0, 6, vals, Options{})
	got := res.Output("out")
	if len(got) != 4*5 {
		t.Fatalf("got %d values", len(got))
	}
	k := 0
	for i := int64(1); i <= 4; i++ {
		for j := int64(1); j <= 5; j++ {
			want := vals[(i-1)*w+j] + vals[(i+1)*w+j] + float64(i) - float64(j)
			if got[k].AsReal() != want {
				t.Errorf("out[%d] (i=%d,j=%d) = %v, want %v", k, i, j, got[k], want)
			}
			k++
		}
	}
	if !res.Clean {
		t.Errorf("not clean: %v", res.Stalled)
	}
}

func TestTwoDStaticCondOnBothVars(t *testing.T) {
	vals := make([]float64, 5*5)
	for i := range vals {
		vals[i] = float64(i) / 3
	}
	res := compileRun2D(t, "if (i = 0) | (j = 0) then U[i, j] else -(U[i, j]) endif",
		0, 4, 0, 4, 0, 4, 0, 4, vals, Options{})
	got := res.Output("out")
	if len(got) != 25 {
		t.Fatalf("got %d values", len(got))
	}
	for p, v := range got {
		i, j := p/5, p%5
		want := vals[p]
		if i != 0 && j != 0 {
			want = -want
		}
		if v.AsReal() != want {
			t.Errorf("out[%d] = %v, want %v", p, v, want)
		}
	}
	if ii := res.II("out"); ii != 2 {
		t.Errorf("full-range 2-D II = %v, want 2", ii)
	}
}

func TestTwoDErrorsBuilder(t *testing.T) {
	g := graph.New()
	b := NewBuilder2(g, "i", 0, 3, "j", 0, 3, nil, Options{})
	b.BindArray2("U", g.AddSource("U", value.Reals(make([]float64, 16))), 0, 3, 0, 3)
	b.BindArray("V", g.AddSource("V", value.Reals(make([]float64, 4))), 0, 3)
	cases := []struct{ src, want string }{
		{"U[i]", "subscript count"},
		{"V[i, j]", "subscript count"},
		{"V[i]", "one-dimensional array"},
		{"U[i, j*2]", "form j±constant"},
		{"U[j, i]", "form i±constant"},
		{"U[i+1, j]", "outside"},
	}
	for _, c := range cases {
		e, err := val.ParseExpr(c.src)
		if err != nil {
			t.Fatal(err)
		}
		_, err = b.Compile(e)
		if err == nil {
			t.Errorf("%q accepted", c.src)
			continue
		}
		if !contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not mention %q", c.src, err, c.want)
		}
	}
	// 2-D reference in a 1-D builder
	b1 := NewBuilder(g, "i", 0, 3, nil, Options{})
	b1.BindArray2("U", g.AddSource("U2", value.Reals(make([]float64, 16))), 0, 3, 0, 3)
	e, _ := val.ParseExpr("U[i, i]")
	if _, err := b1.Compile(e); err == nil {
		t.Error("2-D reference in 1-D builder accepted")
	}
}

func contains(s, sub string) bool {
	return len(sub) == 0 || (len(s) >= len(sub) && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestNewBuilder2Panics(t *testing.T) {
	g := graph.New()
	for i, f := range []func(){
		func() { NewBuilder2(g, "i", 3, 0, "j", 0, 3, nil, Options{}) },
		func() { NewBuilder2(g, "i", 0, 3, "i", 0, 3, nil, Options{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// TestLiteralIndexStream exercises the literal counter construction for
// the index variable in 1-D literal-control mode.
func TestLiteralIndexStream(t *testing.T) {
	e, err := val.ParseExpr("A[i] + i")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	b := NewBuilder(g, "i", 2, 9, nil, Options{LiteralControl: true})
	b.BindArray("A", g.AddSource("A", value.Reals(make([]float64, 12))), 0, 11)
	out, err := b.CompileStream(e)
	if err != nil {
		t.Fatal(err)
	}
	g.Connect(out, g.AddSink("out"), 0)
	if _, err := balance.Balance(g); err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(g, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Output("out")
	if len(got) != 8 {
		t.Fatalf("got %d values", len(got))
	}
	for k, v := range got {
		if v.AsReal() != float64(k+2) {
			t.Errorf("out[%d] = %v, want %d", k, v, k+2)
		}
	}
	if n := res.Graph.ComputeStats().ByOp[graph.OpCtlGen]; n != 0 {
		t.Errorf("literal mode emitted %d generator cells", n)
	}
}
