package pe

import (
	"staticpipe/internal/control"
	"staticpipe/internal/graph"
)

// LiteralPattern builds a boolean control stream from literal instruction
// cells in g and returns the cell producing it. It is the graph-level
// entry point the literal-control compilation pass uses to expand
// idealized generator cells (package passes); primitive-expression
// compilation reaches the same construction through Options.LiteralControl.
func LiteralPattern(g *graph.Graph, pattern []bool, label string) *graph.Node {
	return literalPattern(g, pattern, label)
}

// literalIndexStream emits a contiguous index stream from literal
// instruction cells (control.IndexStream's interleaved counters).
func literalIndexStream(g *graph.Graph, idxs []int64) *graph.Node {
	return control.IndexStream(g, "i", idxs[0], idxs[len(idxs)-1])
}

// literalPattern builds a boolean control stream from literal instruction
// cells: an index stream over the pattern positions, run-decomposed into
// window predicates (lo <= p & p <= hi) combined by an OR tree. This is
// Todd's "straightforward arrangement of data flow instructions" realized
// concretely; the paper's patterns have at most two runs (selection windows
// and boundary masks), so the tree stays shallow.
func literalPattern(g *graph.Graph, pattern []bool, label string) *graph.Node {
	idx := control.IndexStream(g, label+".pos", 0, int64(len(pattern)-1))

	// Decompose into maximal true-runs.
	type run struct{ lo, hi int64 }
	var runs []run
	for p := 0; p < len(pattern); {
		if !pattern[p] {
			p++
			continue
		}
		q := p
		for q+1 < len(pattern) && pattern[q+1] {
			q++
		}
		runs = append(runs, run{int64(p), int64(q)})
		p = q + 1
	}

	switch len(runs) {
	case 0:
		// All-false stream: p < 0 is false for every position.
		return control.Predicate(g, label+".never", idx, graph.OpLT, 0)
	case 1:
		if runs[0].lo == 0 && runs[0].hi == int64(len(pattern)-1) {
			// All-true stream.
			return control.Predicate(g, label+".always", idx, graph.OpGE, 0)
		}
	}

	var terms []*graph.Node
	for _, r := range runs {
		switch {
		case r.lo == 0:
			terms = append(terms, control.Predicate(g, label+".le", idx, graph.OpLE, r.hi))
		case r.hi == int64(len(pattern)-1):
			terms = append(terms, control.Predicate(g, label+".ge", idx, graph.OpGE, r.lo))
		default:
			ge := control.Predicate(g, label+".ge", idx, graph.OpGE, r.lo)
			le := control.Predicate(g, label+".le", idx, graph.OpLE, r.hi)
			and := g.Add(graph.OpAnd, label+".win")
			g.Connect(ge, and, 0)
			g.Connect(le, and, 1)
			terms = append(terms, and)
		}
	}
	for len(terms) > 1 {
		or := g.Add(graph.OpOr, label+".or")
		g.Connect(terms[0], or, 0)
		g.Connect(terms[1], or, 1)
		terms = append(terms[2:], or)
	}
	return terms[0]
}
