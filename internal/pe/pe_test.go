package pe

import (
	"math/rand"
	"strings"
	"testing"

	"staticpipe/internal/balance"
	"staticpipe/internal/exec"
	"staticpipe/internal/graph"
	"staticpipe/internal/val"
	"staticpipe/internal/value"
)

// arrayIn describes a test input array.
type arrayIn struct {
	lo   int64
	vals []float64
}

// compileRun compiles src as a primitive expression on "i" over [lo, hi],
// wires the given arrays, optionally balances, and simulates.
func compileRun(t *testing.T, src string, lo, hi int64, params map[string]int64,
	arrays map[string]arrayIn, opts Options, doBalance bool) *exec.Result {
	t.Helper()
	e, err := val.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	g := graph.New()
	b := NewBuilder(g, "i", lo, hi, params, opts)
	for name, a := range arrays {
		srcN := g.AddSource(name, value.Reals(a.vals))
		b.BindArray(name, srcN, a.lo, a.lo+int64(len(a.vals))-1)
	}
	out, err := b.CompileStream(e)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	sink := g.AddSink("out")
	g.Connect(out, sink, 0)
	// Drain any array the expression did not reference.
	for _, n := range g.Nodes() {
		if n.Op == graph.OpSource && len(n.Out) == 0 {
			g.Connect(n, g.AddSink("discard:"+n.Label), 0)
		}
	}
	if doBalance {
		if _, err := balance.Balance(g); err != nil {
			t.Fatalf("balance: %v", err)
		}
	}
	res, err := exec.Run(g, exec.Options{})
	if err != nil {
		t.Fatalf("run %q: %v", src, err)
	}
	return res
}

// directEval evaluates src per index directly — the reference for
// compiled-graph outputs.
func directEval(t *testing.T, src string, lo, hi int64, params map[string]int64,
	arrays map[string]arrayIn) []value.Value {
	t.Helper()
	e, err := val.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	var out []value.Value
	for i := lo; i <= hi; i++ {
		v, err := evalRef(e, i, "i", params, arrays, map[string]value.Value{})
		if err != nil {
			t.Fatalf("reference eval at i=%d: %v", i, err)
		}
		out = append(out, v)
	}
	return out
}

// evalRef is the test-local reference evaluator for primitive expressions.
func evalRef(e val.Expr, i int64, iv string, params map[string]int64,
	arrays map[string]arrayIn, env map[string]value.Value) (value.Value, error) {
	switch x := e.(type) {
	case *val.IntLit:
		return value.I(x.Val), nil
	case *val.RealLit:
		return value.R(x.F), nil
	case *val.BoolLit:
		return value.B(x.Val), nil
	case *val.Name:
		if x.Ident == iv {
			return value.I(i), nil
		}
		if v, ok := env[x.Ident]; ok {
			return v, nil
		}
		if v, ok := params[x.Ident]; ok {
			return value.I(v), nil
		}
		panic("unbound " + x.Ident)
	case *val.Unary:
		v, err := evalRef(x.E, i, iv, params, arrays, env)
		if err != nil {
			return value.Value{}, err
		}
		return foldUnary(x.Op, v)
	case *val.Binary:
		l, err := evalRef(x.L, i, iv, params, arrays, env)
		if err != nil {
			return value.Value{}, err
		}
		r, err := evalRef(x.R, i, iv, params, arrays, env)
		if err != nil {
			return value.Value{}, err
		}
		return val.ApplyBinary(x.Op, l, r)
	case *val.If:
		c, err := evalRef(x.Cond, i, iv, params, arrays, env)
		if err != nil {
			return value.Value{}, err
		}
		if c.AsBool() {
			return evalRef(x.Then, i, iv, params, arrays, env)
		}
		return evalRef(x.Else, i, iv, params, arrays, env)
	case *val.Let:
		inner := map[string]value.Value{}
		for k, v := range env {
			inner[k] = v
		}
		for _, d := range x.Defs {
			v, err := evalRef(d.Init, i, iv, params, arrays, inner)
			if err != nil {
				return value.Value{}, err
			}
			inner[d.Name] = v
		}
		return evalRef(x.Body, i, iv, params, arrays, inner)
	case *val.Index:
		a := arrays[x.Array]
		sub, err := evalRef(x.Sub, i, iv, params, arrays, env)
		if err != nil {
			return value.Value{}, err
		}
		return value.R(a.vals[sub.AsInt()-a.lo]), nil
	default:
		panic("unsupported in reference evaluator")
	}
}

func ramp(lo int64, n int, scale float64) arrayIn {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = scale * (float64(i) - float64(n)/3)
	}
	return arrayIn{lo: lo, vals: vals}
}

func checkAgainstReference(t *testing.T, src string, lo, hi int64, params map[string]int64,
	arrays map[string]arrayIn, opts Options) *exec.Result {
	t.Helper()
	res := compileRun(t, src, lo, hi, params, arrays, opts, true)
	want := directEval(t, src, lo, hi, params, arrays)
	got := res.Output("out")
	if len(got) != len(want) {
		t.Fatalf("%q: got %d values, want %d", src, len(got), len(want))
	}
	for j := range want {
		if !value.Close(got[j], want[j], 1e-12) {
			t.Errorf("%q: out[%d] = %v, want %v", src, j, got[j], want[j])
		}
	}
	return res
}

// TestFig2Expression compiles the paper's §3 scalar pipeline example.
func TestFig2Expression(t *testing.T) {
	res := checkAgainstReference(t,
		"let y : real := A[i]*B[i] in (y + 2.)*(y - 3.) endlet",
		0, 63, nil,
		map[string]arrayIn{"A": ramp(0, 64, 1.5), "B": ramp(0, 64, -0.5)},
		Options{})
	if ii := res.II("out"); ii != 2 {
		t.Errorf("II = %v, want 2", ii)
	}
	if !res.Clean {
		t.Errorf("not clean: %v", res.Stalled)
	}
}

// TestFig4ArraySelection compiles the smoothing kernel of Fig 4 over the
// interior indices and checks full pipelining after balancing.
func TestFig4ArraySelection(t *testing.T) {
	m := int64(32)
	res := checkAgainstReference(t,
		"0.25 * (C[i-1] + 2.*C[i] + C[i+1])",
		1, m, map[string]int64{"m": m},
		map[string]arrayIn{"C": ramp(0, int(m)+2, 0.7)},
		Options{})
	if ii := res.II("out"); ii != 2 {
		t.Errorf("II = %v, want 2 (Fig 4 is fully pipelined)", ii)
	}
	if !res.Clean {
		t.Errorf("unused boundary elements must be discarded, not stranded: %v", res.Stalled)
	}
}

// TestFig4UnbalancedThrottles shows the role of the FIFOs in Fig 4: without
// balancing the reconvergent adder chain runs slower than the maximum rate.
func TestFig4UnbalancedThrottles(t *testing.T) {
	m := int64(32)
	arrays := map[string]arrayIn{"C": ramp(0, int(m)+2, 0.7)}
	src := "0.25 * (C[i-1] + 2.*C[i] + C[i+1])"
	unbal := compileRun(t, src, 1, m, nil, arrays, Options{}, false)
	bal := compileRun(t, src, 1, m, nil, arrays, Options{}, true)
	if unbal.II("out") <= bal.II("out") {
		t.Errorf("unbalanced II %v should exceed balanced II %v",
			unbal.II("out"), bal.II("out"))
	}
	// Results are identical either way.
	u, v := unbal.Output("out"), bal.Output("out")
	for j := range u {
		if !value.Equal(u[j], v[j]) {
			t.Fatalf("output %d differs", j)
		}
	}
}

// TestFig5Conditional compiles the §5 conditional example with a
// data-dependent condition.
func TestFig5Conditional(t *testing.T) {
	res := checkAgainstReference(t,
		"if C[i] > 0. then -(A[i] + B[i]) else 5.*(A[i]*B[i] + 2.) endif",
		0, 47, nil,
		map[string]arrayIn{
			"A": ramp(0, 48, 1.1),
			"B": ramp(0, 48, -0.3),
			"C": ramp(0, 48, 0.9),
		},
		Options{})
	if ii := res.II("out"); ii != 2 {
		t.Errorf("II = %v, want 2 (Fig 5 is fully pipelined)", ii)
	}
}

// TestExample1Body compiles the full body of the paper's Example 1 with its
// static boundary condition.
func TestExample1Body(t *testing.T) {
	m := int64(24)
	res := checkAgainstReference(t,
		`let P : real := if (i = 0) | (i = m+1) then C[i]
		                 else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif
		 in B[i]*(P*P) endlet`,
		0, m+1, map[string]int64{"m": m},
		map[string]arrayIn{
			"B": ramp(0, int(m)+2, 2.0),
			"C": ramp(0, int(m)+2, 0.25),
		},
		Options{})
	if ii := res.II("out"); ii != 2 {
		t.Errorf("II = %v, want 2", ii)
	}
	if !res.Clean {
		t.Errorf("not clean: %v", res.Stalled)
	}
}

// TestStaticConditionUsesPatterns checks the Todd-style compile-time
// evaluation: a condition over i and params compiles to a control pattern
// generator, not to comparison cells.
func TestStaticConditionUsesPatterns(t *testing.T) {
	e, err := val.ParseExpr("if (i = 0) | (i = 5) then C[i] else 0. endif")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	b := NewBuilder(g, "i", 0, 5, nil, Options{})
	srcN := g.AddSource("C", value.Reals(make([]float64, 6)))
	b.BindArray("C", srcN, 0, 5)
	if _, err := b.CompileStream(e); err != nil {
		t.Fatal(err)
	}
	stats := g.ComputeStats()
	if stats.ByOp[graph.OpEQ] != 0 || stats.ByOp[graph.OpOr] != 0 {
		t.Errorf("static condition compiled to runtime cells: %v", stats.ByOp)
	}
	if stats.ByOp[graph.OpCtlGen] == 0 {
		t.Error("no control generator emitted")
	}
}

func TestConstantFolding(t *testing.T) {
	e, err := val.ParseExpr("A[i] * (2 + 3)")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	b := NewBuilder(g, "i", 0, 3, nil, Options{})
	b.BindArray("A", g.AddSource("A", value.Reals([]float64{1, 2, 3, 4})), 0, 3)
	out, err := b.Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	mul := out.Node
	if mul.Op != graph.OpMul {
		t.Fatalf("root op = %s", mul.Op)
	}
	if mul.In[1].Literal == nil || mul.In[1].Literal.AsInt() != 5 {
		t.Errorf("constant not folded into literal operand: %+v", mul.In[1])
	}
}

func TestPureConstantExpression(t *testing.T) {
	res := compileRun(t, "2. * 3. + 1.", 0, 7, nil, nil, Options{}, true)
	got := res.Output("out")
	if len(got) != 8 {
		t.Fatalf("constant stream length %d, want 8", len(got))
	}
	for _, v := range got {
		if v.AsReal() != 7 {
			t.Errorf("got %v, want 7", v)
		}
	}
}

func TestIndexVariableAsValue(t *testing.T) {
	checkAgainstReference(t, "A[i] * i + i", 2, 9, nil,
		map[string]arrayIn{"A": ramp(0, 12, 1.0)}, Options{})
}

func TestNestedConditionals(t *testing.T) {
	// outer static, inner static on the selected subsequence
	checkAgainstReference(t,
		`if i < 4 then if i < 2 then A[i] else -A[i] endif else A[i] * 2. endif`,
		0, 7, nil, map[string]arrayIn{"A": ramp(0, 8, 1.3)}, Options{})
	// outer dynamic, inner static (cannot fuse; stacked gates)
	checkAgainstReference(t,
		`if A[i] > 0. then if i < 4 then B[i] else -B[i] endif else 0. endif`,
		0, 7, nil,
		map[string]arrayIn{"A": ramp(0, 8, 1.0), "B": ramp(0, 8, -0.8)},
		Options{})
	// outer dynamic, inner dynamic
	checkAgainstReference(t,
		`if A[i] > 0. then if B[i] > 0. then A[i]+B[i] else A[i]-B[i] endif else 0. endif`,
		0, 15, nil,
		map[string]arrayIn{"A": ramp(0, 16, 1.0), "B": ramp(0, 16, -0.6)},
		Options{})
}

func TestConstantCondition(t *testing.T) {
	// via staticBools: compile-time all-true pattern folds nothing, but a
	// literally constant condition under a dynamic outer arm must select
	// the arm directly.
	checkAgainstReference(t,
		`if A[i] > 0. then if true then B[i] else 0. endif else 1. endif`,
		0, 7, nil,
		map[string]arrayIn{"A": ramp(0, 8, 1.0), "B": ramp(0, 8, 2.0)},
		Options{})
}

func TestLetShadowing(t *testing.T) {
	checkAgainstReference(t,
		`let x : real := A[i]; x : real := x + 1. in x * 2. endlet`,
		0, 5, nil, map[string]arrayIn{"A": ramp(0, 6, 1.0)}, Options{})
}

func TestMinMaxAbs(t *testing.T) {
	checkAgainstReference(t,
		`min(A[i], 0.) + max(B[i], 1.) * abs(A[i])`,
		0, 9, nil,
		map[string]arrayIn{"A": ramp(0, 10, 1.7), "B": ramp(0, 10, -1.2)},
		Options{})
}

func TestShiftedIterationSpace(t *testing.T) {
	// iteration space not starting at the array's lower bound
	checkAgainstReference(t, "C[i-2] + C[i+2]", 4, 9, nil,
		map[string]arrayIn{"C": ramp(0, 14, 0.5)}, Options{})
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"forall j in [0,1] construct j endall", "nested forall"},
		{"for j : integer := 0 do j endfor", "nested for-iter"},
		{"[0: 1.]", "array constructor"},
		{"A[i: 1.]", "array constructor"},
		{"A[i*2]", "form i±constant"},
		{"A[j]", "form i±constant"},
		{"A", "without a subscript"},
		{"zz + 1", "unbound identifier"},
		{"B[i]", "unbound array"},
		{"A[i+9]", "outside the array's range"},
	}
	for _, c := range cases {
		e, err := val.ParseExpr(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		g := graph.New()
		b := NewBuilder(g, "i", 0, 3, nil, Options{})
		b.BindArray("A", g.AddSource("A", value.Reals(make([]float64, 4))), 0, 3)
		_, err = b.Compile(e)
		if err == nil {
			t.Errorf("%q: accepted", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not mention %q", c.src, err, c.want)
		}
		var npe *NotPrimitiveError
		if !asNotPrimitive(err, &npe) {
			t.Errorf("%q: error is %T, want *NotPrimitiveError", c.src, err)
		}
	}
}

func asNotPrimitive(err error, out **NotPrimitiveError) bool {
	if e, ok := err.(*NotPrimitiveError); ok {
		*out = e
		return true
	}
	return false
}

func TestClassify(t *testing.T) {
	arrays := map[string]bool{"A": true}
	params := map[string]int64{"m": 5}
	good := []string{
		"1", "2.5", "true", "i", "m", "A[i]", "A[i-1]", "A[m+i]",
		"let x := A[i] in x*x endlet",
		"if i < m then A[i] else 0. endif",
		"-A[i]", "abs(A[i])",
	}
	for _, src := range good {
		e, err := val.ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := Classify(e, "i", params, arrays, nil); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
	bad := []string{
		"A", "A[i*i]", "x", "[0: 1.]", "A[i: 2.]",
		"forall j in [0,1] construct j endall",
		"for j : integer := 0 do j endfor",
	}
	for _, src := range bad {
		e, err := val.ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := Classify(e, "i", params, arrays, nil); err == nil {
			t.Errorf("%q: classified primitive", src)
		}
	}
	// let-bound names become scalars for the body
	e, _ := val.ParseExpr("let y := 1 in y + z endlet")
	if err := Classify(e, "i", nil, nil, map[string]bool{"z": true}); err != nil {
		t.Errorf("scalar env not honored: %v", err)
	}
}

func TestLiteralControlOption(t *testing.T) {
	// The same kernels compile with literal control subgraphs; outputs
	// match, at the cost of residual tokens (free-running alternators).
	m := int64(12)
	src := "0.25 * (C[i-1] + 2.*C[i] + C[i+1])"
	arrays := map[string]arrayIn{"C": ramp(0, int(m)+2, 0.7)}
	res := compileRun(t, src, 1, m, nil, arrays, Options{LiteralControl: true}, true)
	want := directEval(t, src, 1, m, nil, arrays)
	got := res.Output("out")
	if len(got) != len(want) {
		t.Fatalf("got %d values, want %d", len(got), len(want))
	}
	for j := range want {
		if !value.Close(got[j], want[j], 1e-12) {
			t.Errorf("out[%d] = %v, want %v", j, got[j], want[j])
		}
	}
	stats := res.Graph.ComputeStats()
	if stats.ByOp[graph.OpCtlGen] != 0 {
		t.Error("literal mode still emitted idealized control generators")
	}
}

// TestQuickRandomPrimitive cross-checks compiled graphs against the
// reference evaluator on randomly generated primitive expressions.
func TestQuickRandomPrimitive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	arrays := map[string]arrayIn{
		"A": ramp(0, 16, 1.0),
		"B": ramp(0, 16, -0.7),
	}
	for trial := 0; trial < 40; trial++ {
		src := randomPE(rng, 0)
		res := compileRun(t, src, 2, 13, nil, arrays, Options{}, true)
		want := directEval(t, src, 2, 13, nil, arrays)
		got := res.Output("out")
		if len(got) != len(want) {
			t.Fatalf("trial %d %q: got %d values, want %d", trial, src, len(got), len(want))
		}
		for j := range want {
			if !value.Close(got[j], want[j], 1e-9) {
				t.Errorf("trial %d %q: out[%d] = %v, want %v", trial, src, j, got[j], want[j])
			}
		}
		// No II assertion here: random conditions can partition the short
		// range into bursts whose pipeline-fill gap lands in the measured
		// window (the deterministic kernel tests assert II = 2 where the
		// paper claims it). Bound the makespan loosely instead.
		if res.Cycles > 2*len(want)+200 {
			t.Errorf("trial %d %q: makespan %d cycles for %d values", trial, src, res.Cycles, len(want))
		}
	}
}

// randomPE generates a random primitive expression in the test arrays'
// safe index window.
func randomPE(rng *rand.Rand, depth int) string {
	switch r := rng.Intn(10); {
	case depth > 2 || r < 2:
		// leaves
		switch rng.Intn(4) {
		case 0:
			return "A[i]"
		case 1:
			return "B[i-1]"
		case 2:
			return "1.5"
		default:
			return "A[i+2]"
		}
	case r < 6:
		op := []string{"+", "-", "*"}[rng.Intn(3)]
		return "(" + randomPE(rng, depth+1) + " " + op + " " + randomPE(rng, depth+1) + ")"
	case r < 8:
		cond := []string{"A[i] > 0.", "i < 8", "B[i] < A[i]"}[rng.Intn(3)]
		return "if " + cond + " then " + randomPE(rng, depth+1) + " else " + randomPE(rng, depth+1) + " endif"
	default:
		return "let v : real := " + randomPE(rng, depth+1) + " in (v + " + randomPE(rng, depth+1) + ") endlet"
	}
}

// TestArmSlackOption verifies the arm-elasticity padding: both arms gain
// equal-length FIFOs, balance is preserved, and results are unchanged.
func TestArmSlackOption(t *testing.T) {
	src := "if A[i] > 0. then A[i]*2. else -(A[i]) endif"
	arrays := map[string]arrayIn{"A": ramp(0, 24, 1.0)}
	plain := compileRun(t, src, 0, 23, nil, arrays, Options{}, true)
	padded := compileRun(t, src, 0, 23, nil, arrays, Options{ArmSlack: 3}, true)
	pv, qv := plain.Output("out"), padded.Output("out")
	if len(pv) != len(qv) {
		t.Fatalf("lengths %d vs %d", len(pv), len(qv))
	}
	for i := range pv {
		if !value.Equal(pv[i], qv[i]) {
			t.Errorf("out[%d] differs with arm slack", i)
		}
	}
	if ii := padded.II("out"); ii != 2 {
		t.Errorf("padded II = %v, want 2", ii)
	}
	// The padded graph carries at least 2×ArmSlack extra buffer stages.
	ps := plain.Graph.ComputeStats().BufferUnits
	qs := padded.Graph.ComputeStats().BufferUnits
	if qs < ps+6 {
		t.Errorf("buffer stages %d -> %d, expected +6 or more", ps, qs)
	}
	// Static conditions are exempt from padding.
	static := "if i < 12 then A[i] else -(A[i]) endif"
	s0 := compileRun(t, static, 0, 23, nil, arrays, Options{}, true)
	s1 := compileRun(t, static, 0, 23, nil, arrays, Options{ArmSlack: 3}, true)
	if s1.Graph.ComputeStats().BufferUnits != s0.Graph.ComputeStats().BufferUnits {
		t.Error("static condition received arm padding")
	}
}
