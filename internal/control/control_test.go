package control

import (
	"testing"

	"staticpipe/internal/exec"
	"staticpipe/internal/graph"
	"staticpipe/internal/value"
)

func boolsOf(p graph.Pattern) []bool { return p.Values() }

func TestWindow(t *testing.T) {
	p := Window(1, 3, 6)
	want := []bool{false, true, true, true, false, false}
	got := boolsOf(p)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Window[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// whole-range window
	all := boolsOf(Window(0, 4, 5))
	for i, b := range all {
		if !b {
			t.Errorf("full window position %d false", i)
		}
	}
}

func TestWindowPanics(t *testing.T) {
	for i, f := range []func(){
		func() { Window(-1, 2, 4) },
		func() { Window(2, 1, 4) },
		func() { Window(0, 4, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestEndsAndInterior(t *testing.T) {
	e := boolsOf(Ends(5))
	in := boolsOf(Interior(5))
	wantE := []bool{true, false, false, false, true}
	for i := range wantE {
		if e[i] != wantE[i] {
			t.Errorf("Ends[%d] = %v", i, e[i])
		}
		if in[i] != !wantE[i] {
			t.Errorf("Interior[%d] = %v", i, in[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Ends(1) should panic")
		}
	}()
	Ends(1)
}

func TestRepeatAndAlternating(t *testing.T) {
	r := boolsOf(Repeat(true, 4))
	if len(r) != 4 || !r[0] || !r[3] {
		t.Errorf("Repeat = %v", r)
	}
	a := boolsOf(Alternating(5))
	want := []bool{true, false, true, false, true}
	for i := range want {
		if a[i] != want[i] {
			t.Errorf("Alternating[%d] = %v", i, a[i])
		}
	}
	if n := len(boolsOf(Alternating(4))); n != 4 {
		t.Errorf("Alternating(4) len = %d", n)
	}
}

func TestFromBools(t *testing.T) {
	src := []bool{true, false, true}
	p := FromBools(src)
	src[0] = false // must have been copied
	got := boolsOf(p)
	if !got[0] || got[1] || !got[2] {
		t.Errorf("FromBools = %v", got)
	}
}

// runToSink attaches a sink to node out and simulates.
func runToSink(t *testing.T, g *graph.Graph, out *graph.Node) *exec.Result {
	t.Helper()
	sink := g.AddSink("out")
	g.Connect(out, sink, 0)
	res, err := exec.Run(g, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCounterLiteral(t *testing.T) {
	g := graph.New()
	c := Counter(g, "i", 0, 1, 9)
	res := runToSink(t, g, c)
	got := res.Output("out")
	if len(got) != 10 {
		t.Fatalf("counter emitted %d values, want 10", len(got))
	}
	for i, v := range got {
		if v.AsInt() != int64(i) {
			t.Errorf("i[%d] = %v", i, v)
		}
	}
	if !res.Clean {
		t.Errorf("counter should quiesce cleanly: %v", res.Stalled)
	}
	// The literal counter's feedback cycle has 3 cells and 1 token: II = 3.
	if ii := res.II("out"); ii != 3 {
		t.Errorf("counter II = %v, want 3", ii)
	}
}

func TestCounterStride(t *testing.T) {
	g := graph.New()
	c := Counter(g, "i", 3, 2, 9)
	res := runToSink(t, g, c)
	got := res.Output("out")
	want := []int64{3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("got %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].AsInt() != want[i] {
			t.Errorf("i[%d] = %v, want %d", i, got[i], want[i])
		}
	}
}

func TestCounterStrideOvershoot(t *testing.T) {
	// hi not reachable exactly: 0,3,6 for hi=7.
	g := graph.New()
	c := Counter(g, "i", 0, 3, 7)
	res := runToSink(t, g, c)
	got := res.Output("out")
	want := []int64{0, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i].AsInt() != want[i] {
			t.Errorf("i[%d] = %v, want %d", i, got[i], want[i])
		}
	}
}

func TestCounterPanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Counter(graph.New(), "i", 0, 0, 5)
}

func TestAlternatorFullRate(t *testing.T) {
	g := graph.New()
	a := Alternator(g, "alt")
	// Terminate the run by consuming through a gate with a finite pattern.
	gate := g.Add(graph.OpTGate, "take")
	ctl := g.AddCtl("ctl", graph.Pattern{Body: []bool{true}, Repeat: 20, Suffix: []bool{false}})
	g.Connect(ctl, gate, 0)
	g.Connect(a, gate, 1)
	res := runToSink(t, g, gate)
	got := res.Output("out")
	if len(got) != 20 {
		t.Fatalf("got %d values", len(got))
	}
	for i, v := range got {
		if v.AsBool() != (i%2 == 0) {
			t.Errorf("alt[%d] = %v", i, v)
		}
	}
	if ii := res.II("out"); ii != 2 {
		t.Errorf("alternator II = %v, want 2 (full rate)", ii)
	}
	if res.Clean {
		t.Error("free-running alternator should leave residual tokens")
	}
}

func TestIndexStreamFullRate(t *testing.T) {
	g := graph.New()
	idx := IndexStream(g, "i", 0, 19)
	res := runToSink(t, g, idx)
	got := res.Output("out")
	if len(got) != 20 {
		t.Fatalf("index stream emitted %d values, want 20", len(got))
	}
	for i, v := range got {
		if v.AsInt() != int64(i) {
			t.Errorf("i[%d] = %v", i, v)
		}
	}
	// The headline property: interleaved counters reach the maximum rate
	// that a single literal counter (II = 3) cannot.
	if ii := res.II("out"); ii != 2 {
		t.Errorf("index stream II = %v, want 2", ii)
	}
}

func TestIndexStreamDegenerate(t *testing.T) {
	g := graph.New()
	idx := IndexStream(g, "i", 5, 5)
	res := runToSink(t, g, idx)
	got := res.Output("out")
	if len(got) != 1 || got[0].AsInt() != 5 {
		t.Fatalf("got %v, want [5]", got)
	}
	if !res.Clean {
		t.Errorf("degenerate stream should be clean: %v", res.Stalled)
	}
}

func TestIndexStreamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	IndexStream(graph.New(), "i", 5, 4)
}

func TestPredicateLiteral(t *testing.T) {
	g := graph.New()
	idx := IndexStream(g, "i", 0, 9)
	p := Predicate(g, "lt5", idx, graph.OpLT, 5)
	res := runToSink(t, g, p)
	got := res.Output("out")
	if len(got) != 10 {
		t.Fatalf("got %d values", len(got))
	}
	for i, v := range got {
		if v.AsBool() != (i < 5) {
			t.Errorf("p[%d] = %v", i, v)
		}
	}
}

func TestPredicateRejectsNonRelational(t *testing.T) {
	g := graph.New()
	idx := Counter(g, "i", 0, 1, 3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Predicate(g, "bad", idx, graph.OpAdd, 5)
}

// TestLiteralMatchesIdealized cross-checks: the literal window construction
// (index stream + predicates + AND) selects exactly the same elements as
// the idealized Window pattern.
func TestLiteralMatchesIdealized(t *testing.T) {
	const lo, hi, n = 2, 7, 12
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(10 + i)
	}

	// Idealized.
	gi := graph.New()
	src := gi.AddSource("C", value.Reals(vals))
	gate := gi.Add(graph.OpTGate, "sel")
	gi.Connect(gi.AddCtl("w", Window(lo, hi, n)), gate, 0)
	gi.Connect(src, gate, 1)
	ideal := runToSink(t, gi, gate)

	// Literal: i >= lo AND i <= hi computed from an index stream.
	gl := graph.New()
	srcL := gl.AddSource("C", value.Reals(vals))
	idx := IndexStream(gl, "i", 0, n-1)
	ge := Predicate(gl, "ge", idx, graph.OpGE, lo)
	le := Predicate(gl, "le", idx, graph.OpLE, hi)
	and := gl.Add(graph.OpAnd, "in")
	gl.Connect(ge, and, 0)
	gl.Connect(le, and, 1)
	gateL := gl.Add(graph.OpTGate, "sel")
	gl.Connect(and, gateL, 0)
	gl.Connect(srcL, gateL, 1)
	lit := runToSink(t, gl, gateL)

	iv, lv := ideal.Output("out"), lit.Output("out")
	if len(iv) != hi-lo+1 || len(lv) != len(iv) {
		t.Fatalf("lengths: ideal %d, literal %d, want %d", len(iv), len(lv), hi-lo+1)
	}
	for i := range iv {
		if !value.Equal(iv[i], lv[i]) {
			t.Errorf("element %d: ideal %v, literal %v", i, iv[i], lv[i])
		}
	}
}
