package forall

import (
	"math"
	"testing"

	"staticpipe/internal/balance"
	"staticpipe/internal/exec"
	"staticpipe/internal/graph"
	"staticpipe/internal/pe"
	"staticpipe/internal/val"
	"staticpipe/internal/value"
)

// example1Src is the forall block of the paper's Example 1.
const example1Src = `
forall i in [0, m+1]
  P : real := if (i = 0) | (i = m+1) then C[i]
              else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
construct B[i]*(P*P)
endall`

func parseForall(t *testing.T, src string) *val.Forall {
	t.Helper()
	e, err := val.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	fa, ok := e.(*val.Forall)
	if !ok {
		t.Fatalf("parsed %T, want *val.Forall", e)
	}
	return fa
}

// runForall compiles and simulates a forall over the given inputs.
func runForall(t *testing.T, src string, params map[string]int64,
	ins map[string]struct {
		lo   int64
		vals []float64
	}, opts Options, doBalance bool) (*exec.Result, *Out, *graph.Graph) {
	t.Helper()
	fa := parseForall(t, src)
	g := graph.New()
	arrays := map[string]Input{}
	for name, in := range ins {
		srcN := g.AddSource(name, value.Reals(in.vals))
		arrays[name] = Input{Node: srcN, Lo: in.lo, Hi: in.lo + int64(len(in.vals)) - 1}
	}
	out, err := Compile(g, fa, params, arrays, opts)
	if err != nil {
		t.Fatal(err)
	}
	g.Connect(out.Node, g.AddSink("out"), 0)
	if doBalance {
		if _, err := balance.Balance(g); err != nil {
			t.Fatalf("balance: %v", err)
		}
	}
	res, err := exec.Run(g, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res, out, g
}

// reference evaluates Example 1 directly.
func example1Ref(B, C []float64, m int) []float64 {
	out := make([]float64, m+2)
	for i := 0; i <= m+1; i++ {
		var p float64
		if i == 0 || i == m+1 {
			p = C[i]
		} else {
			p = 0.25 * (C[i-1] + 2*C[i] + C[i+1])
		}
		out[i] = B[i] * (p * p)
	}
	return out
}

func example1Inputs(m int) map[string]struct {
	lo   int64
	vals []float64
} {
	B := make([]float64, m+2)
	C := make([]float64, m+2)
	for i := range B {
		B[i] = 1 + float64(i)/3
		C[i] = math.Cos(float64(i) / 2)
	}
	return map[string]struct {
		lo   int64
		vals []float64
	}{
		"B": {0, B},
		"C": {0, C},
	}
}

// TestExample1Pipeline is Theorem 2 on the paper's own example: the
// pipeline scheme compiles Example 1 into a fully pipelined graph.
func TestExample1Pipeline(t *testing.T) {
	m := 20
	ins := example1Inputs(m)
	res, out, _ := runForall(t, example1Src, map[string]int64{"m": int64(m)}, ins,
		Options{Scheme: Pipeline}, true)
	if out.Lo != 0 || out.Hi != int64(m+1) {
		t.Errorf("output range [%d, %d]", out.Lo, out.Hi)
	}
	want := example1Ref(ins["B"].vals, ins["C"].vals, m)
	got := res.Output("out")
	if len(got) != len(want) {
		t.Fatalf("got %d elements, want %d", len(got), len(want))
	}
	for i := range want {
		if !value.Close(got[i], value.R(want[i]), 1e-12) {
			t.Errorf("A[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if ii := res.II("out"); ii != 2 {
		t.Errorf("II = %v, want 2 (Theorem 2: fully pipelined)", ii)
	}
	if !res.Clean {
		t.Errorf("not clean: %v", res.Stalled)
	}
}

// TestParallelSchemeMatches verifies the parallel scheme computes the same
// array.
func TestParallelSchemeMatches(t *testing.T) {
	m := 6
	ins := example1Inputs(m)
	params := map[string]int64{"m": int64(m)}
	pipe, _, _ := runForall(t, example1Src, params, ins, Options{Scheme: Pipeline}, true)
	par, _, _ := runForall(t, example1Src, params, ins, Options{Scheme: Parallel}, false)
	pv, qv := pipe.Output("out"), par.Output("out")
	if len(pv) != len(qv) {
		t.Fatalf("lengths %d vs %d", len(pv), len(qv))
	}
	for i := range pv {
		if !value.Close(pv[i], qv[i], 1e-12) {
			t.Errorf("element %d: pipeline %v, parallel %v", i, pv[i], qv[i])
		}
	}
}

// TestSchemeCosts quantifies the paper's point (E14): the parallel scheme
// replicates the body per element, so its cell count grows with the range
// while the pipeline scheme's stays fixed.
func TestSchemeCosts(t *testing.T) {
	params := func(m int) map[string]int64 { return map[string]int64{"m": int64(m)} }
	cellsOf := func(m int, s Scheme) int {
		ins := example1Inputs(m)
		_, _, g := runForall(t, example1Src, params(m), ins, Options{Scheme: s}, false)
		return g.ComputeStats().Cells
	}
	p8, p16 := cellsOf(8, Pipeline), cellsOf(16, Pipeline)
	if p8 != p16 {
		t.Errorf("pipeline scheme cells grew with range: %d vs %d", p8, p16)
	}
	q8, q16 := cellsOf(8, Parallel), cellsOf(16, Parallel)
	if q16 <= q8 || q16 < p16*4 {
		t.Errorf("parallel scheme should replicate cells: %d (m=8) vs %d (m=16), pipeline %d", q8, q16, p16)
	}
}

func TestSimpleForallNoDefs(t *testing.T) {
	res, _, _ := runForall(t, "forall i in [1, 8] construct C[i] * 2. endall",
		nil, map[string]struct {
			lo   int64
			vals []float64
		}{"C": {0, []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}},
		Options{Scheme: Pipeline}, true)
	got := res.Output("out")
	if len(got) != 8 {
		t.Fatalf("got %d elements", len(got))
	}
	for i := range got {
		if got[i].AsReal() != float64(i+1)*2 {
			t.Errorf("element %d = %v", i, got[i])
		}
	}
}

func TestIsPrimitive(t *testing.T) {
	arrays := map[string]bool{"B": true, "C": true}
	params := map[string]int64{"m": 5}
	fa := parseForall(t, example1Src)
	if err := IsPrimitive(fa, params, arrays); err != nil {
		t.Errorf("Example 1 should be primitive: %v", err)
	}
	// nested forall in a definition
	bad := parseForall(t, `forall i in [0, 3]
	  Q : array[real] := forall j in [0, 1] construct 1. endall;
	construct 1. endall`)
	if err := IsPrimitive(bad, params, arrays); err == nil {
		t.Error("nested forall classified primitive")
	}
	// non-manifest range
	bad2 := parseForall(t, "forall i in [0, k] construct 1. endall")
	if err := IsPrimitive(bad2, params, arrays); err == nil {
		t.Error("unknown range bound classified primitive")
	}
	// bad subscript in accumulation
	bad3 := parseForall(t, "forall i in [0, 3] construct C[2*i] endall")
	if err := IsPrimitive(bad3, params, arrays); err == nil {
		t.Error("non-affine subscript classified primitive")
	}
}

func TestCompileErrors(t *testing.T) {
	g := graph.New()
	fa := parseForall(t, "forall i in [3, 1] construct 1. endall")
	if _, err := Compile(g, fa, nil, nil, Options{}); err == nil {
		t.Error("empty range accepted")
	}
	fa2 := parseForall(t, "forall i in [0, k] construct 1. endall")
	if _, err := Compile(g, fa2, nil, nil, Options{}); err == nil {
		t.Error("non-manifest range accepted")
	}
	fa3 := parseForall(t, "forall i in [0, 3] construct C[i] endall")
	if _, err := Compile(g, fa3, nil, nil, Options{Scheme: Pipeline}); err == nil {
		t.Error("unbound array accepted")
	}
	if _, err := Compile(g, fa3, nil, nil, Options{Scheme: Scheme(9)}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestPipelineWithLiteralControl(t *testing.T) {
	m := 8
	ins := example1Inputs(m)
	res, _, g := runForall(t, example1Src, map[string]int64{"m": int64(m)}, ins,
		Options{Scheme: Pipeline, PE: pe.Options{LiteralControl: true}}, true)
	want := example1Ref(ins["B"].vals, ins["C"].vals, m)
	got := res.Output("out")
	if len(got) != len(want) {
		t.Fatalf("got %d elements, want %d", len(got), len(want))
	}
	for i := range want {
		if !value.Close(got[i], value.R(want[i]), 1e-12) {
			t.Errorf("A[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if n := g.ComputeStats().ByOp[graph.OpCtlGen]; n != 0 {
		t.Errorf("literal mode emitted %d idealized control cells", n)
	}
}
