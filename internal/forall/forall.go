// Package forall compiles Val forall expressions into static dataflow
// instruction graphs (§6, Theorem 2).
//
// Two schemes are implemented, as the paper describes:
//
//   - the pipeline scheme (Fig 6): the body — definitions cascaded into the
//     accumulation expression — compiles once as a primitive-expression
//     pipeline over the index range; array elements stream through it at
//     the maximum rate after balancing;
//   - the parallel scheme: one copy of the body per element, with gated
//     distribution of the input element streams and a merge chain gathering
//     the element results in index order. The paper notes this scheme "is
//     of limited interest" for stream-resident arrays; it is provided as
//     the comparison baseline (experiment E14).
package forall

import (
	"fmt"

	"staticpipe/internal/graph"
	"staticpipe/internal/pe"
	"staticpipe/internal/val"
)

// Input is an array element stream available to the block: values for
// indices Lo..Hi arriving in order at Node's output. Two-dimensional
// arrays (TwoD) stream row-major over [Lo,Hi]×[Lo2,Hi2].
type Input struct {
	Node     *graph.Node
	Lo, Hi   int64
	TwoD     bool
	Lo2, Hi2 int64
}

// Out describes a compiled block's result stream: elements of the
// constructed array, indices Lo..Hi (×[Lo2,Hi2] row-major when TwoD), in
// order.
type Out struct {
	Node     *graph.Node
	Lo, Hi   int64
	TwoD     bool
	Lo2, Hi2 int64
}

// Scheme selects the mapping strategy.
type Scheme int

const (
	// Pipeline is the paper's scheme of §6: one body instance processing
	// the element stream.
	Pipeline Scheme = iota
	// Parallel replicates the body per element (baseline).
	Parallel
)

// Options configures compilation.
type Options struct {
	Scheme Scheme
	PE     pe.Options
}

// IsPrimitive checks the §6 definition of a primitive forall expression:
// constant index range, and definitions and accumulation all primitive
// expressions on the index variable. arrays names the array streams in
// scope. A nil return means primitive. (Two-dimensional foralls validate
// their body during compilation instead.)
func IsPrimitive(fa *val.Forall, params map[string]int64, arrays map[string]bool) error {
	if _, err := val.EvalConst(fa.Lo, params); err != nil {
		return fmt.Errorf("forall: index range is not manifest: %w", err)
	}
	if _, err := val.EvalConst(fa.Hi, params); err != nil {
		return fmt.Errorf("forall: index range is not manifest: %w", err)
	}
	if fa.TwoD() {
		if _, err := val.EvalConst(fa.Lo2, params); err != nil {
			return fmt.Errorf("forall: index range is not manifest: %w", err)
		}
		if _, err := val.EvalConst(fa.Hi2, params); err != nil {
			return fmt.Errorf("forall: index range is not manifest: %w", err)
		}
		return nil
	}
	scalars := map[string]bool{}
	for _, d := range fa.Defs {
		if err := pe.Classify(d.Init, fa.IndexVar, params, arrays, scalars); err != nil {
			return fmt.Errorf("forall: definition of %s: %w", d.Name, err)
		}
		scalars[d.Name] = true
	}
	if err := pe.Classify(fa.Accum, fa.IndexVar, params, arrays, scalars); err != nil {
		return fmt.Errorf("forall: accumulation: %w", err)
	}
	return nil
}

// Compile translates a primitive forall into the graph and returns its
// output stream.
func Compile(g *graph.Graph, fa *val.Forall, params map[string]int64,
	arrays map[string]Input, opts Options) (*Out, error) {
	lo, err := val.EvalConst(fa.Lo, params)
	if err != nil {
		return nil, fmt.Errorf("forall: %w", err)
	}
	hi, err := val.EvalConst(fa.Hi, params)
	if err != nil {
		return nil, fmt.Errorf("forall: %w", err)
	}
	if hi < lo {
		return nil, fmt.Errorf("forall: empty index range [%d, %d]", lo, hi)
	}
	var lo2, hi2 int64
	if fa.TwoD() {
		if lo2, err = val.EvalConst(fa.Lo2, params); err != nil {
			return nil, fmt.Errorf("forall: %w", err)
		}
		if hi2, err = val.EvalConst(fa.Hi2, params); err != nil {
			return nil, fmt.Errorf("forall: %w", err)
		}
		if hi2 < lo2 {
			return nil, fmt.Errorf("forall: empty index range [%d, %d]", lo2, hi2)
		}
	}
	body := bodyExpr(fa)
	switch opts.Scheme {
	case Pipeline:
		return compilePipeline(g, fa, body, lo, hi, lo2, hi2, params, arrays, opts)
	case Parallel:
		return compileParallel(g, fa, body, lo, hi, lo2, hi2, params, arrays, opts)
	default:
		return nil, fmt.Errorf("forall: unknown scheme %d", opts.Scheme)
	}
}

// newBodyBuilder creates the pe builder for the forall's iteration space
// and binds the available array streams.
func newBodyBuilder(g *graph.Graph, fa *val.Forall, lo, hi, lo2, hi2 int64,
	params map[string]int64, arrays map[string]Input, opts Options) *pe.Builder {
	var b *pe.Builder
	if fa.TwoD() {
		b = pe.NewBuilder2(g, fa.IndexVar, lo, hi, fa.IndexVar2, lo2, hi2, params, opts.PE)
	} else {
		b = pe.NewBuilder(g, fa.IndexVar, lo, hi, params, opts.PE)
	}
	for name, in := range arrays {
		if in.TwoD {
			b.BindArray2(name, in.Node, in.Lo, in.Hi, in.Lo2, in.Hi2)
		} else {
			b.BindArray(name, in.Node, in.Lo, in.Hi)
		}
	}
	return b
}

// bodyExpr cascades the definition part into the accumulation part: the
// body is semantically `let defs in accum endlet` (Fig 6 is "the
// instruction graph obtained by cascading the instruction graphs for the
// definition expression and the accumulation expression").
func bodyExpr(fa *val.Forall) val.Expr {
	if len(fa.Defs) == 0 {
		return fa.Accum
	}
	return &val.Let{Defs: fa.Defs, Body: fa.Accum}
}

func compilePipeline(g *graph.Graph, fa *val.Forall, body val.Expr, lo, hi, lo2, hi2 int64,
	params map[string]int64, arrays map[string]Input, opts Options) (*Out, error) {
	b := newBodyBuilder(g, fa, lo, hi, lo2, hi2, params, arrays, opts)
	node, err := b.CompileStream(body)
	if err != nil {
		return nil, fmt.Errorf("forall: %w", err)
	}
	return &Out{Node: node, Lo: lo, Hi: hi, TwoD: fa.TwoD(), Lo2: lo2, Hi2: hi2}, nil
}

// compileParallel builds one body copy per index value. Each copy is a
// single-iteration primitive-expression graph: its array references become
// one-element selections from the shared input streams (the distribution
// gates), and the per-element results are gathered back into a stream by a
// chain of merges whose controls forward all earlier elements before the
// copy's own.
func compileParallel(g *graph.Graph, fa *val.Forall, body val.Expr, lo, hi, lo2, hi2 int64,
	params map[string]int64, arrays map[string]Input, opts Options) (*Out, error) {
	cols := int64(1)
	if fa.TwoD() {
		cols = hi2 - lo2 + 1
	}
	total := (hi - lo + 1) * cols
	var gathered *graph.Node
	for p := int64(0); p < total; p++ {
		i := lo + p/cols
		j := lo2 + p%cols
		single := *fa
		var b *pe.Builder
		if fa.TwoD() {
			b = newBodyBuilder(g, &single, i, i, j, j, params, arrays, opts)
		} else {
			b = newBodyBuilder(g, &single, i, i, 0, 0, params, arrays, opts)
		}
		copyOut, err := b.CompileStream(body)
		if err != nil {
			return nil, fmt.Errorf("forall: copy for %s=%d: %w", fa.IndexVar, i, err)
		}
		if gathered == nil {
			gathered = copyOut
			continue
		}
		// gathered carries the earlier elements; append this copy's.
		merge := g.Add(graph.OpMerge, fmt.Sprintf("gather:%d", p))
		ctl := g.AddCtl(fmt.Sprintf("gctl:%d", p),
			graph.Pattern{Body: []bool{true}, Repeat: int(p), Suffix: []bool{false}})
		g.Connect(ctl, merge, 0)
		g.Connect(gathered, merge, 1)
		g.Connect(copyOut, merge, 2)
		gathered = merge
	}
	return &Out{Node: gathered, Lo: lo, Hi: hi, TwoD: fa.TwoD(), Lo2: lo2, Hi2: hi2}, nil
}
