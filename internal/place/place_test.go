package place_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"staticpipe/internal/core"
	"staticpipe/internal/graph"
	"staticpipe/internal/machine"
	"staticpipe/internal/mcm"
	"staticpipe/internal/place"
	"staticpipe/internal/progs"
	"staticpipe/internal/trace"
	"staticpipe/internal/trace/analyze"
	"staticpipe/internal/value"
)

// contentionKernel builds w parallel d-cell identity chains with cell
// creation interleaved across chains (row by row), so contiguous-ID
// placement (ByStage) cuts every chain arc while a connectivity-aware
// mapping keeps each chain on one PE.
func contentionKernel(w, d, n int) *graph.Graph {
	g := graph.New()
	prev := make([]*graph.Node, w)
	for k := 0; k < w; k++ {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i*w + k)
		}
		prev[k] = g.AddSource(fmt.Sprintf("in%d", k), value.Reals(vals))
	}
	for s := 0; s < d; s++ {
		for k := 0; k < w; k++ {
			c := g.Add(graph.OpID, "")
			g.Connect(prev[k], c, 0)
			prev[k] = c
		}
	}
	for k := 0; k < w; k++ {
		g.Connect(prev[k], g.AddSink(fmt.Sprintf("out%d", k)), 0)
	}
	return g
}

// kernelConfig is the machine shape the contention kernel is tuned for:
// two cells per PE is the §2 design point (cell rate 1/2, PE bandwidth 1),
// one AM cell per array memory keeps the array side out of the verdict,
// and unit network delay makes routing contention, not raw transit, the
// bystage penalty.
func kernelConfig(w int) machine.Config {
	return machine.Config{PEs: w, FUs: 1, AMs: 2 * w, NetDelay: 1}
}

func mustRun(t *testing.T, g *graph.Graph, cfg machine.Config) (*machine.Result, *analyze.Analysis) {
	t.Helper()
	m := trace.NewMetrics()
	cfg.Tracer = m
	res, err := machine.Run(g, cfg)
	if err != nil {
		t.Fatalf("machine.Run (%s): %v", cfg.Assign, err)
	}
	a, err := analyze.Analyze(res.Graph, m)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res, a
}

func TestPlanShapeAndDeterminism(t *testing.T) {
	g := contentionKernel(4, 3, 16)
	pl, err := place.Plan(g, place.Options{PEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.PE) != pl.Graph.NumNodes() {
		t.Fatalf("map length %d, graph has %d nodes", len(pl.PE), pl.Graph.NumNodes())
	}
	load := make([]int, 4)
	nc := 0
	for _, n := range pl.Graph.Nodes() {
		pe := pl.PE[n.ID]
		if n.Op == graph.OpSource || n.Op == graph.OpSink {
			if pe != -1 {
				t.Fatalf("%s mapped to PE %d, want -1 (AM-resident)", n.Name(), pe)
			}
			continue
		}
		nc++
		if pe < 0 || pe >= 4 {
			t.Fatalf("%s mapped to PE %d, want [0,4)", n.Name(), pe)
		}
		load[pe]++
	}
	cap := (nc + 3) / 4
	for pe, l := range load {
		if l > cap {
			t.Fatalf("PE %d hosts %d cells, cap is %d", pe, l, cap)
		}
	}
	if pl.Cost > pl.SeedCost {
		t.Fatalf("refined cost %d exceeds seed cost %d", pl.Cost, pl.SeedCost)
	}
	// Each 3-cell chain fits one PE entirely, so only AM-side arcs remain.
	if pl.Cost != 0 {
		t.Fatalf("chain kernel cut cost = %d, want 0 (chains co-located)", pl.Cost)
	}
	again, err := place.Plan(g, place.Options{PEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pl.PE, again.PE) {
		t.Fatal("Plan is not deterministic")
	}

	if _, err := place.Plan(g, place.Options{}); err == nil {
		t.Fatal("Plan accepted PEs=0")
	}
	one, err := place.Plan(g, place.Options{PEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range one.Graph.Nodes() {
		if n.Op != graph.OpSource && n.Op != graph.OpSink && one.PE[n.ID] != 0 {
			t.Fatalf("PEs=1 mapped %s to %d", n.Name(), one.PE[n.ID])
		}
	}
}

// TestContentionKernelSeverity pins the tentpole's headline behavior: on a
// kernel whose ID order fights contiguous placement, the min-cost mapping
// strictly lowers the analyzer's contention severity versus ByStage and
// beats the hot-spot placement by well over 2x in simulated time, while
// every placement computes byte-identical output streams.
func TestContentionKernelSeverity(t *testing.T) {
	const w, d, n = 8, 2, 256
	g := contentionKernel(w, d, n)
	base := kernelConfig(w)

	pl, err := place.Plan(g, place.Options{PEs: base.PEs})
	if err != nil {
		t.Fatal(err)
	}

	stage := base
	stage.Assign = machine.ByStage
	hot := base
	hot.Assign = machine.HotSpot
	placed := base
	placed.Assign = machine.Placed
	placed.Placement = pl.PE

	stageRes, stageA := mustRun(t, g, stage)
	hotRes, _ := mustRun(t, g, hot)
	minRes, minA := mustRun(t, g, placed)

	if !reflect.DeepEqual(stageRes.Outputs, minRes.Outputs) || !reflect.DeepEqual(stageRes.Outputs, hotRes.Outputs) {
		t.Fatal("outputs differ across placements")
	}
	if minA.Severity >= stageA.Severity {
		t.Fatalf("min-cost severity %d (%s) not below bystage %d (%s)",
			minA.Severity, minA.Remarks[0], stageA.Severity, stageA.Remarks[0])
	}
	if 2*minRes.Cycles > hotRes.Cycles {
		t.Fatalf("min-cost %d cycles vs hot-spot %d: less than 2x", minRes.Cycles, hotRes.Cycles)
	}
	if minRes.Cycles >= stageRes.Cycles {
		t.Fatalf("min-cost %d cycles not below bystage %d", minRes.Cycles, stageRes.Cycles)
	}

	// The delta report grades this as an improvement in both directions
	// that matter: from the hot-spot demo and from bystage.
	delta := analyze.RenderDelta(stageA, minA)
	if want := "contention: improved"; !strings.Contains(delta, want) {
		t.Fatalf("delta report missing %q:\n%s", want, delta)
	}
}

// TestProfileGuidedPlan exercises the trace.Metrics-weighted mode: metrics
// from a deliberately bad baseline run still describe the dataflow (firing
// counts are placement-independent), so re-planning from them recovers the
// same contention win.
func TestProfileGuidedPlan(t *testing.T) {
	const w, d, n = 8, 2, 128
	g := contentionKernel(w, d, n)
	base := kernelConfig(w)

	m := trace.NewMetrics()
	hot := base
	hot.Assign = machine.HotSpot
	hot.Tracer = m
	hotRes, err := machine.Run(g, hot)
	if err != nil {
		t.Fatal(err)
	}

	pl, err := place.Plan(g, place.Options{PEs: base.PEs, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	placed := base
	placed.Assign = machine.Placed
	placed.Placement = pl.PE
	res, err := machine.Run(g, placed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hotRes.Outputs, res.Outputs) {
		t.Fatal("profile-guided outputs differ from baseline")
	}
	if 2*res.Cycles > hotRes.Cycles {
		t.Fatalf("profile-guided %d cycles vs hot-spot baseline %d: less than 2x", res.Cycles, hotRes.Cycles)
	}
}

// TestCriticalCycleCoLocated checks the CritBoost objective on a real
// program: Example 2's first-order recurrence carries a rate-bounding
// cycle, and the planned mapping must keep that cycle's compute cells on
// one PE whenever they fit under the load cap.
func TestCriticalCycleCoLocated(t *testing.T) {
	p := progs.Example2(32)
	u, err := core.Compile(p.Source, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const pes = 2
	pl, err := place.Plan(u.Compiled.Graph, place.Options{PEs: pes})
	if err != nil {
		t.Fatal(err)
	}
	_, crit, err := mcm.Critical(pl.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if len(crit) == 0 {
		t.Skip("no critical cycle on this graph")
	}
	pe := -1
	for _, id := range crit {
		n := pl.Graph.Node(id)
		if n.Op == graph.OpSource || n.Op == graph.OpSink {
			continue
		}
		if pe == -1 {
			pe = pl.PE[id]
		}
		if pl.PE[id] != pe {
			t.Fatalf("critical cycle split across PEs: %s on %d, expected %d", n.Name(), pl.PE[id], pe)
		}
	}
}

// TestPlacedValidation pins the machine-side contract errors.
func TestPlacedValidation(t *testing.T) {
	g := contentionKernel(2, 2, 4)
	cfg := machine.Config{PEs: 2, FUs: 1, AMs: 1, Assign: machine.Placed}

	cfg.Placement = []int{0}
	if _, err := machine.Run(g, cfg); err == nil {
		t.Fatal("short placement map accepted")
	}

	pl, err := place.Plan(g, place.Options{PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]int(nil), pl.PE...)
	for i, pe := range bad {
		if pe >= 0 {
			bad[i] = 99
			break
		}
	}
	cfg.Placement = bad
	if _, err := machine.Run(g, cfg); err == nil {
		t.Fatal("out-of-range PE accepted")
	}

	cfg.Placement = pl.PE
	if _, err := machine.Run(g, cfg); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}
}
