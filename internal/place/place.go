// Package place computes contention-aware instruction-cell → PE mappings
// for the packet-level machine (package machine).
//
// The machine's routing network charges every remote result and acknowledge
// packet a transit delay and serializes deliveries to one per endpoint per
// cycle, while packets between cells resident on the same endpoint bypass
// the network entirely (a one-cycle local hop). Placement therefore decides
// how much of a graph's steady-state token traffic the network carries: the
// distance between any two distinct endpoints is uniform, so the only
// spatial structure that matters is which arcs are *cut* — carried between
// endpoints — and how evenly the cells load the PEs' one-instruction-per-
// cycle bandwidth.
//
// Plan models this directly as a minimum-cost assignment: each compute cell
// must be placed on exactly one PE, each PE accepts at most ⌈cells/PEs⌉
// cells (the load-balance cap), and the objective is the total weight of
// cut arcs. Arc weights come from the static graph — how many packets per
// firing the arc's endpoints exchange, boosted on feedback arcs and on the
// mcm critical cycle, whose round-trip latency bounds the whole pipeline's
// rate (§7) — or, in profile-guided mode, from a previous run's observed
// per-cell firing counts (trace.Metrics), which weight hot regions by the
// traffic they actually carried. The assignment network is solved with
// package mincost (the same solver behind optimal buffering, §8
// conclusion 3), iterated to a fixed point from a connectivity-aware seed.
package place

import (
	"fmt"
	"sort"

	"staticpipe/internal/graph"
	"staticpipe/internal/mcm"
	"staticpipe/internal/mincost"
	"staticpipe/internal/trace"
)

// Options configures Plan.
type Options struct {
	// PEs is the processing-element count the mapping targets (required).
	PEs int
	// CritBoost multiplies the weight of arcs joining two cells of the mcm
	// critical cycle (default 8): cutting the rate-bounding cycle adds
	// network latency directly to the whole pipeline's initiation interval.
	CritBoost int64
	// FeedbackBoost multiplies the weight of declared feedback arcs
	// (default 4): a for-iter loop's circulating values pay the cut cost
	// every iteration and cannot be pipelined around.
	FeedbackBoost int64
	// Rounds bounds the min-cost refinement iterations (default 8); each
	// round re-solves the assignment against the previous round's neighbor
	// positions and is accepted only if it strictly lowers the cut cost.
	Rounds int
	// Metrics, when non-nil, switches to profile-guided weights: each
	// arc's packet-per-firing weight is scaled by the smaller of its
	// endpoints' observed firing counts, so regions that carried real
	// traffic dominate the objective. Firing counts are a property of the
	// dataflow schedule, not of where cells were placed, so metrics from a
	// run under any placement are valid.
	Metrics *trace.Metrics
}

func (o Options) withDefaults() Options {
	if o.CritBoost <= 0 {
		o.CritBoost = 8
	}
	if o.FeedbackBoost <= 0 {
		o.FeedbackBoost = 4
	}
	if o.Rounds <= 0 {
		o.Rounds = 8
	}
	return o
}

// Placement is a computed cell → PE mapping over the FIFO-expanded graph.
type Placement struct {
	// Graph is the FIFO-expanded graph the mapping indexes — the graph the
	// machine actually simulates.
	Graph *graph.Graph
	// PE maps node ID → PE index for compute cells; sources and sinks,
	// which always reside on array memories, carry -1. The slice's length
	// is Graph.NumNodes(), so it is directly usable as
	// machine.Config.Placement.
	PE []int
	// SeedCost and Cost are the cut-arc weight of the connectivity seed
	// and of the final mapping; Rounds counts accepted refinement rounds.
	SeedCost, Cost int64
	Rounds         int
}

// edge is one merged undirected compute-compute adjacency with its total
// cut weight.
type edge struct {
	u, v int // compute indices (not node IDs)
	w    int64
}

// Plan computes a placement for g on opts.PEs processing elements. The
// graph is FIFO-expanded first (the expansion is deterministic, so the
// mapping lines up with the graph the machine core expands internally).
func Plan(g *graph.Graph, opts Options) (*Placement, error) {
	opts = opts.withDefaults()
	if opts.PEs <= 0 {
		return nil, fmt.Errorf("place: PEs must be positive, got %d", opts.PEs)
	}
	g = g.ExpandFIFOs()

	p := &Placement{Graph: g, PE: make([]int, g.NumNodes())}
	// compute[i] is the i-th compute cell's node ID; idx inverts it.
	var compute []int
	idx := make([]int, g.NumNodes())
	for _, n := range g.Nodes() {
		p.PE[n.ID] = -1
		idx[n.ID] = -1
		if n.Op != graph.OpSource && n.Op != graph.OpSink {
			idx[n.ID] = len(compute)
			compute = append(compute, int(n.ID))
		}
	}
	nc := len(compute)
	if nc == 0 {
		return p, nil
	}
	if opts.PEs == 1 {
		for _, id := range compute {
			p.PE[id] = 0
		}
		return p, nil
	}

	edges := weightArcs(g, idx, opts)
	// adjacency lists over compute indices
	adj := make([][]edge, nc)
	var incident []int64 = make([]int64, nc)
	for _, e := range edges {
		adj[e.u] = append(adj[e.u], e)
		adj[e.v] = append(adj[e.v], edge{u: e.v, v: e.u, w: e.w})
		incident[e.u] += e.w
		incident[e.v] += e.w
	}

	cap := (nc + opts.PEs - 1) / opts.PEs
	cur := seed(nc, adj, cap, opts.PEs)
	p.SeedCost = cutCost(edges, cur)
	best := p.SeedCost

	// Min-cost refinement: re-solve the (cell, PE) assignment with each
	// cell's cost to a PE equal to the incident weight it would cut given
	// the neighbors' current positions; accept only strict improvements of
	// the exact recomputed cut, so the loop terminates.
	for r := 0; r < opts.Rounds && best > 0; r++ {
		next, err := assign(nc, adj, incident, cur, cap, opts.PEs)
		if err != nil {
			return nil, err
		}
		c := cutCost(edges, next)
		if c >= best {
			break
		}
		best = c
		cur = next
		p.Rounds++
	}
	p.Cost = best
	for i, id := range compute {
		p.PE[id] = cur[i]
	}
	return p, nil
}

// weightArcs merges the graph's compute-compute arcs into undirected
// weighted edges. Per firing, a cut arc u→v costs: the result packet
// (unless u is arithmetic — those results ship from a function unit
// regardless of placement) plus the acknowledge packet v returns, each
// boosted on feedback arcs and on the critical cycle, and scaled by
// observed traffic in profile mode.
func weightArcs(g *graph.Graph, idx []int, opts Options) []edge {
	onCrit := map[graph.NodeID]bool{}
	if _, crit, err := mcm.Critical(g); err == nil {
		for _, id := range crit {
			onCrit[id] = true
		}
	}
	acc := map[[2]int]int64{}
	for _, a := range g.Arcs() {
		u, v := idx[a.From], idx[a.To]
		if u < 0 || v < 0 || u == v {
			continue
		}
		w := int64(2) // result + ack
		if g.Node(a.From).Op.IsArith() {
			w = 1 // result ships FU → consumer either way; only the ack localizes
		}
		if a.Feedback {
			w *= opts.FeedbackBoost
		}
		if onCrit[a.From] && onCrit[a.To] {
			w *= opts.CritBoost
		}
		if m := opts.Metrics; m != nil {
			w *= observed(m, int(a.From), int(a.To))
		}
		k := [2]int{u, v}
		if k[0] > k[1] {
			k[0], k[1] = k[1], k[0]
		}
		acc[k] += w
	}
	edges := make([]edge, 0, len(acc))
	for k, w := range acc {
		edges = append(edges, edge{u: k[0], v: k[1], w: w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	return edges
}

// observed returns the traffic scale for an arc in profile mode: the
// smaller of the endpoints' firing counts (each firing moves one token and
// one ack across the arc), floored at 1 so unobserved arcs keep their
// static weight.
func observed(m *trace.Metrics, from, to int) int64 {
	var f, t int64
	if from < len(m.Cells) {
		f = m.Cells[from].Firings
	}
	if to < len(m.Cells) {
		t = m.Cells[to].Firings
	}
	if t < f {
		f = t
	}
	if f < 1 {
		f = 1
	}
	return f
}

// seed produces the initial assignment: cells in a heaviest-edge-first DFS
// preorder over the compute adjacency, cut into contiguous blocks of cap.
// Connected regions — chains, loops, reconvergent diamonds — land together
// by construction, which is already near-optimal for the chain-structured
// graphs the compiler emits; refinement then handles what connectivity
// order alone gets wrong.
func seed(nc int, adj [][]edge, cap, pes int) []int {
	order := make([]int, 0, nc)
	seen := make([]bool, nc)
	var stack []int
	for start := 0; start < nc; start++ {
		if seen[start] {
			continue
		}
		stack = append(stack[:0], start)
		seen[start] = true
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, c)
			// push lighter edges first so the heaviest neighbor is
			// visited (and co-located) next
			nb := append([]edge(nil), adj[c]...)
			sort.Slice(nb, func(i, j int) bool {
				if nb[i].w != nb[j].w {
					return nb[i].w < nb[j].w
				}
				return nb[i].v > nb[j].v
			})
			for _, e := range nb {
				if !seen[e.v] {
					seen[e.v] = true
					stack = append(stack, e.v)
				}
			}
		}
	}
	out := make([]int, nc)
	for pos, c := range order {
		pe := pos / cap
		if pe >= pes {
			pe = pes - 1
		}
		out[c] = pe
	}
	return out
}

// assign solves one round of the (cell, PE) min-cost assignment: source →
// each cell (capacity 1), cell → every PE at the cut cost implied by the
// neighbors' current placement, PE → sink at the load cap. The flow is
// integral and saturates every cell, so reading the cell→PE edge flows
// yields a complete assignment.
func assign(nc int, adj [][]edge, incident []int64, cur []int, cap, pes int) ([]int, error) {
	net := mincost.New(2 + nc + pes)
	s, t := 0, 1
	cellNode := func(c int) int { return 2 + c }
	peNode := func(p int) int { return 2 + nc + p }
	type cellEdge struct{ c, pe, id int }
	ids := make([]cellEdge, 0, nc*pes)
	for c := 0; c < nc; c++ {
		net.AddEdge(s, cellNode(c), 1, 0)
		// attraction[p]: incident weight kept local if c lands on p
		for p := 0; p < pes; p++ {
			attract := int64(0)
			for _, e := range adj[c] {
				if cur[e.v] == p {
					attract += e.w
				}
			}
			id := net.AddEdge(cellNode(c), peNode(p), 1, incident[c]-attract)
			ids = append(ids, cellEdge{c: c, pe: p, id: id})
		}
	}
	for p := 0; p < pes; p++ {
		net.AddEdge(peNode(p), t, int64(cap), 0)
	}
	flow, _, err := net.MinCostMaxFlow(s, t)
	if err != nil {
		return nil, fmt.Errorf("place: assignment solve: %w", err)
	}
	if flow != int64(nc) {
		return nil, fmt.Errorf("place: assignment flow %d, want %d", flow, nc)
	}
	out := make([]int, nc)
	for i := range out {
		out[i] = -1
	}
	for _, ce := range ids {
		if net.Flow(ce.id) > 0 {
			out[ce.c] = ce.pe
		}
	}
	for c, p := range out {
		if p < 0 {
			return nil, fmt.Errorf("place: cell %d left unassigned", c)
		}
	}
	return out, nil
}

// cutCost totals the weight of edges whose endpoints sit on different PEs.
func cutCost(edges []edge, pe []int) int64 {
	var c int64
	for _, e := range edges {
		if pe[e.u] != pe[e.v] {
			c += e.w
		}
	}
	return c
}
