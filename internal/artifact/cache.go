// Package artifact is a content-addressed, bounded, concurrency-safe cache
// of compiled execution artifacts. Entries are keyed by a canonical hash of
// everything that determines what a compilation produces — the program
// source and the compile-relevant options (pass list, loop schemes, batch
// width, placement inputs) — so two submissions of the same program under
// the same strategy share one compiled artifact, and any difference that
// could change the compiled graph changes the key.
//
// The cache is built for a service admission path with three properties:
//
//   - Hits are cheap and parallel: the key space is sharded, each shard
//     guarded by its own mutex held only for map/LRU pointer work — never
//     across a compilation.
//   - Misses are deduplicated ("singleflight"): N concurrent submissions of
//     one new program trigger exactly one compile; the other N-1 block on
//     the winner's done channel and share its artifact (or its error —
//     errors propagate to every waiter and are never cached).
//   - Memory is bounded: per-shard LRU eviction under both an entry budget
//     and a byte budget (estimated artifact footprint).
package artifact

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"staticpipe/internal/core"
)

// Key identifies one compilation's content: the program source plus every
// Option field that can change the compiled artifact. Run-time attachments
// (context, tracer, progress, workers, cycle bounds) are deliberately
// excluded — they bind per run, not per artifact. Batch is included
// because it selects the compiled graph's batched execution shape at the
// service layer; Place/PEs are included because the memoized placement
// plans hang off the artifact.
type Key struct {
	Source         string
	ForallScheme   int
	ForIterScheme  int
	LiteralControl bool
	NoBalance      bool
	NaiveBalance   bool
	Dedup          bool
	ArmSlack       int
	Passes         string
	Batch          int
	Place          string
	PEs            int
}

// KeyFor builds the cache key for one submission: src plus the
// compile-relevant fields of opts, with place/pes from the service's
// placement request (empty/0 when unused).
func KeyFor(src string, opts core.Options, place string, pes int) Key {
	return Key{
		Source:         src,
		ForallScheme:   int(opts.ForallScheme),
		ForIterScheme:  int(opts.ForIterScheme),
		LiteralControl: opts.LiteralControl,
		NoBalance:      opts.NoBalance,
		NaiveBalance:   opts.NaiveBalance,
		Dedup:          opts.Dedup,
		ArmSlack:       opts.ArmSlack,
		Passes:         opts.Passes,
		Batch:          opts.Batch,
		Place:          place,
		PEs:            pes,
	}
}

// Hash returns the canonical content address: a SHA-256 over a
// length-prefixed encoding of every field (length prefixes make the
// encoding injective — no field concatenation can collide with another
// field split), rendered as lowercase hex.
func (k Key) Hash() string {
	h := sha256.New()
	writeStr := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		io.WriteString(h, s)
	}
	writeInt := func(v int) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(int64(v)))
		h.Write(n[:])
	}
	writeBool := func(b bool) {
		if b {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	writeStr(k.Source)
	writeInt(k.ForallScheme)
	writeInt(k.ForIterScheme)
	writeBool(k.LiteralControl)
	writeBool(k.NoBalance)
	writeBool(k.NaiveBalance)
	writeBool(k.Dedup)
	writeInt(k.ArmSlack)
	writeStr(k.Passes)
	writeInt(k.Batch)
	writeStr(k.Place)
	writeInt(k.PEs)
	return hex.EncodeToString(h.Sum(nil))
}

// Config bounds the cache.
type Config struct {
	// MaxEntries caps the artifact count (default 256).
	MaxEntries int
	// MaxBytes caps the estimated resident footprint (default 256 MiB).
	MaxBytes int64
	// Shards is the lock-shard count (default 16, min 1).
	Shards int
}

func (c Config) withDefaults() Config {
	if c.MaxEntries <= 0 {
		c.MaxEntries = 256
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 256 << 20
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.Shards > c.MaxEntries {
		c.Shards = c.MaxEntries
	}
	return c
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      int64 // lookups served from a resident entry
	Misses    int64 // lookups that compiled (one per singleflight group)
	Coalesced int64 // lookups that waited on another caller's compile
	Evictions int64 // entries removed under the budgets
	Entries   int64 // resident artifacts
	Bytes     int64 // estimated resident footprint
	// CompileSaved is the cumulative compile wall time hits and coalesced
	// waiters did not pay (each credited the entry's measured cost).
	CompileSaved time.Duration
}

// entry is one resident artifact plus its LRU bookkeeping.
type entry struct {
	hash string
	art  *core.Artifact
	size int64
	elem *list.Element // position in the shard's LRU list
}

// flight is one in-progress compile; waiters block on done.
type flight struct {
	done chan struct{}
	art  *core.Artifact
	err  error
}

// shard is one lock domain: a hash→entry map with LRU ordering, plus the
// in-flight compile table for singleflight coalescing.
type shard struct {
	mu       sync.Mutex
	entries  map[string]*entry
	lru      *list.List // front = most recent; evict from back
	inflight map[string]*flight
	bytes    int64
}

// Cache is the content-addressed artifact cache. The zero value is not
// usable; construct with New.
type Cache struct {
	cfg        Config
	shards     []shard
	perEntries int   // per-shard entry budget
	perBytes   int64 // per-shard byte budget

	hits         atomic.Int64
	misses       atomic.Int64
	coalesced    atomic.Int64
	evictions    atomic.Int64
	entries      atomic.Int64
	bytes        atomic.Int64
	compileSaved atomic.Int64 // nanoseconds
}

// New builds a cache under the given budgets.
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	c := &Cache{
		cfg:        cfg,
		shards:     make([]shard, cfg.Shards),
		perEntries: max(1, cfg.MaxEntries/cfg.Shards),
		perBytes:   max64(1, cfg.MaxBytes/int64(cfg.Shards)),
	}
	for i := range c.shards {
		c.shards[i].entries = map[string]*entry{}
		c.shards[i].lru = list.New()
		c.shards[i].inflight = map[string]*flight{}
	}
	return c
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func (c *Cache) shardFor(hash string) *shard {
	// The hash is uniformly distributed hex; its first byte picks a shard.
	return &c.shards[int(hash[0])%len(c.shards)]
}

// Outcome reports how a Get was served.
type Outcome int

const (
	// Hit means the artifact was resident.
	Hit Outcome = iota
	// Miss means this caller compiled it.
	Miss
	// Coalesced means another caller was already compiling it and this
	// caller shared the result.
	Coalesced
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// Get returns the artifact for key, compiling it via compile on a miss.
// Concurrent Gets for one key run compile exactly once; every caller gets
// the same artifact (or the same error — errors are delivered to all
// waiters and never cached). compile runs outside all cache locks.
func (c *Cache) Get(key Key, compile func() (*core.Artifact, error)) (*core.Artifact, Outcome, error) {
	hash := key.Hash()
	sh := c.shardFor(hash)

	sh.mu.Lock()
	if e, ok := sh.entries[hash]; ok {
		sh.lru.MoveToFront(e.elem)
		art := e.art
		sh.mu.Unlock()
		c.hits.Add(1)
		c.compileSaved.Add(int64(art.CompileWall))
		return art, Hit, nil
	}
	if f, ok := sh.inflight[hash]; ok {
		sh.mu.Unlock()
		<-f.done
		c.coalesced.Add(1)
		if f.err != nil {
			return nil, Coalesced, f.err
		}
		c.compileSaved.Add(int64(f.art.CompileWall))
		return f.art, Coalesced, nil
	}
	// Neither resident nor in flight: this caller compiles.
	f := &flight{done: make(chan struct{})}
	sh.inflight[hash] = f
	sh.mu.Unlock()

	art, err := compile()
	f.art, f.err = art, err

	sh.mu.Lock()
	delete(sh.inflight, hash)
	if err == nil {
		c.insertLocked(sh, hash, art)
	}
	sh.mu.Unlock()
	close(f.done)

	c.misses.Add(1)
	if err != nil {
		return nil, Miss, err
	}
	return art, Miss, nil
}

// Lookup probes the cache without compiling; it reports whether the
// artifact was resident (in-flight compiles are not waited on).
func (c *Cache) Lookup(key Key) (*core.Artifact, bool) {
	hash := key.Hash()
	sh := c.shardFor(hash)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[hash]; ok {
		sh.lru.MoveToFront(e.elem)
		return e.art, true
	}
	return nil, false
}

// insertLocked adds a freshly compiled artifact to sh (whose mutex the
// caller holds) and evicts from the LRU tail until the shard is back under
// its budgets. An artifact larger than the whole byte budget is still
// admitted alone — the compile is already paid; it just evicts everything
// else and leaves on the next insert.
func (c *Cache) insertLocked(sh *shard, hash string, art *core.Artifact) {
	if _, ok := sh.entries[hash]; ok {
		return // a racing insert won; keep the resident entry
	}
	e := &entry{hash: hash, art: art, size: estimateSize(art)}
	e.elem = sh.lru.PushFront(e)
	sh.entries[hash] = e
	sh.bytes += e.size
	c.entries.Add(1)
	c.bytes.Add(e.size)
	for (len(sh.entries) > c.perEntries || sh.bytes > c.perBytes) && len(sh.entries) > 1 {
		back := sh.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*entry)
		sh.lru.Remove(back)
		delete(sh.entries, victim.hash)
		sh.bytes -= victim.size
		c.entries.Add(-1)
		c.bytes.Add(-victim.size)
		c.evictions.Add(1)
	}
}

// estimateSize approximates an artifact's resident footprint: the source
// text plus a per-cell and per-arc charge covering graph nodes, arcs,
// prepared simulator scratch, and slack for the lazily built machine
// preparation. The estimate only needs to be monotone in artifact size for
// the byte budget to be meaningful.
func estimateSize(art *core.Artifact) int64 {
	const perCell, perArc = 512, 128
	return int64(len(art.Source)) + int64(art.Cells)*perCell + int64(art.Arcs)*perArc
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Coalesced:    c.coalesced.Load(),
		Evictions:    c.evictions.Load(),
		Entries:      c.entries.Load(),
		Bytes:        c.bytes.Load(),
		CompileSaved: time.Duration(c.compileSaved.Load()),
	}
}
