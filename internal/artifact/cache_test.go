package artifact

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"staticpipe/internal/core"
)

// srcN returns a small valid program distinct per n (n lands in a
// literal, so each n is a distinct source and therefore a distinct key).
func srcN(n int) string {
	return fmt.Sprintf(`
param m = 4;
input A : array[real] [1, m];
Y : array[real] :=
  forall i in [1, m]
  construct A[i] + %d.
  endall;
output Y;
`, n)
}

func compileN(t *testing.T, n int) *core.Artifact {
	t.Helper()
	art, err := core.CompileArtifact(srcN(n), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return art
}

// TestKeyHashCanonical pins the content address: identical keys collide,
// every field is load-bearing, and the length-prefixed encoding is
// injective across field boundaries.
func TestKeyHashCanonical(t *testing.T) {
	base := Key{Source: "src", Passes: "a,b", Batch: 4, Place: "mincost", PEs: 8}
	if base.Hash() != base.Hash() {
		t.Fatal("hash is not deterministic")
	}
	variants := []Key{
		{Source: "src2", Passes: "a,b", Batch: 4, Place: "mincost", PEs: 8},
		{Source: "src", ForallScheme: 1, Passes: "a,b", Batch: 4, Place: "mincost", PEs: 8},
		{Source: "src", ForIterScheme: 1, Passes: "a,b", Batch: 4, Place: "mincost", PEs: 8},
		{Source: "src", LiteralControl: true, Passes: "a,b", Batch: 4, Place: "mincost", PEs: 8},
		{Source: "src", NoBalance: true, Passes: "a,b", Batch: 4, Place: "mincost", PEs: 8},
		{Source: "src", NaiveBalance: true, Passes: "a,b", Batch: 4, Place: "mincost", PEs: 8},
		{Source: "src", Dedup: true, Passes: "a,b", Batch: 4, Place: "mincost", PEs: 8},
		{Source: "src", ArmSlack: 2, Passes: "a,b", Batch: 4, Place: "mincost", PEs: 8},
		{Source: "src", Passes: "a,c", Batch: 4, Place: "mincost", PEs: 8},
		{Source: "src", Passes: "a,b", Batch: 8, Place: "mincost", PEs: 8},
		{Source: "src", Passes: "a,b", Batch: 4, Place: "bystage", PEs: 8},
		{Source: "src", Passes: "a,b", Batch: 4, Place: "mincost", PEs: 4},
	}
	seen := map[string]Key{base.Hash(): base}
	for _, v := range variants {
		h := v.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("hash collision between %+v and %+v", prev, v)
		}
		seen[h] = v
	}
	// Injectivity across adjacent string fields: without length prefixes
	// these two would encode the same bytes.
	a := Key{Source: "xy", Passes: ""}
	b := Key{Source: "x", Passes: "y"}
	if a.Hash() == b.Hash() {
		t.Fatal("field-boundary collision: encoding is not injective")
	}
}

// TestSingleflightCoalesces pins compile deduplication: N concurrent Gets
// of one new key run the compile function exactly once; everyone shares
// the winner's artifact, and the stats record one miss plus N-1 coalesced
// lookups.
func TestSingleflightCoalesces(t *testing.T) {
	c := New(Config{Shards: 1})
	key := KeyFor(srcN(1), core.Options{}, "", 0)
	var compiles atomic.Int64
	compile := func() (*core.Artifact, error) {
		compiles.Add(1)
		time.Sleep(20 * time.Millisecond) // hold the flight open so waiters pile up
		return core.CompileArtifact(srcN(1), core.Options{})
	}

	const callers = 8
	arts := make([]*core.Artifact, callers)
	outcomes := make([]Outcome, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			art, out, err := c.Get(key, compile)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			arts[i], outcomes[i] = art, out
		}(i)
	}
	wg.Wait()

	if n := compiles.Load(); n != 1 {
		t.Fatalf("compile ran %d times, want 1", n)
	}
	misses := 0
	for i := 1; i < callers; i++ {
		if arts[i] != arts[0] {
			t.Fatalf("caller %d got a different artifact pointer", i)
		}
	}
	for _, out := range outcomes {
		if out == Miss {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d callers report Miss, want exactly 1", misses)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Coalesced != callers-1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss, %d served, 1 entry", st, callers-1)
	}

	// The key is now resident: one more Get is a plain hit, no compile.
	if _, out, err := c.Get(key, compile); err != nil || out != Hit {
		t.Fatalf("post-flight Get = %v outcome %v, want hit", err, out)
	}
	if n := compiles.Load(); n != 1 {
		t.Fatalf("resident hit recompiled (%d compiles)", n)
	}
}

// TestSingleflightErrorPropagates pins the failure contract: a compile
// error reaches every coalesced waiter, is never cached, and the next Get
// retries the compile.
func TestSingleflightErrorPropagates(t *testing.T) {
	c := New(Config{Shards: 1})
	key := KeyFor("not even a program", core.Options{}, "", 0)
	boom := errors.New("compile failed")
	var compiles atomic.Int64
	failing := func() (*core.Artifact, error) {
		compiles.Add(1)
		time.Sleep(10 * time.Millisecond)
		return nil, boom
	}

	const callers = 4
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			art, _, err := c.Get(key, failing)
			if !errors.Is(err, boom) || art != nil {
				t.Errorf("caller %d: art=%v err=%v, want the compile error", i, art, err)
			}
		}(i)
	}
	wg.Wait()
	if n := compiles.Load(); n != 1 {
		t.Fatalf("failing compile ran %d times during the flight, want 1", n)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("error was cached: %+v", st)
	}

	// The error is gone with the flight: the next Get compiles again.
	if _, out, err := c.Get(key, failing); !errors.Is(err, boom) || out != Miss {
		t.Fatalf("retry = outcome %v err %v, want fresh miss with the error", out, err)
	}
	if n := compiles.Load(); n != 2 {
		t.Fatalf("retry did not recompile (%d compiles)", n)
	}
}

// TestCacheEvictionLRU pins the entry budget: the least recently used
// entry leaves first, and touching an entry (Get or Lookup) refreshes it.
func TestCacheEvictionLRU(t *testing.T) {
	c := New(Config{MaxEntries: 2, Shards: 1})
	keys := make([]Key, 3)
	arts := make([]*core.Artifact, 3)
	for i := range keys {
		keys[i] = KeyFor(srcN(10+i), core.Options{}, "", 0)
		arts[i] = compileN(t, 10+i)
	}
	get := func(i int) Outcome {
		_, out, err := c.Get(keys[i], func() (*core.Artifact, error) { return arts[i], nil })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	get(0)
	get(1)
	get(0) // refresh key 0: key 1 is now the LRU tail
	if out := get(2); out != Miss {
		t.Fatalf("insert of key 2 = %v, want miss", out)
	}
	if _, ok := c.Lookup(keys[1]); ok {
		t.Fatal("key 1 survived eviction; LRU order ignored the refresh of key 0")
	}
	if _, ok := c.Lookup(keys[0]); !ok {
		t.Fatal("recently used key 0 was evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", st)
	}
	if out := get(1); out != Miss {
		t.Fatalf("evicted key re-Get = %v, want miss", out)
	}
}

// TestCacheEvictionBytes pins the byte budget: inserts evict from the LRU
// tail until the estimated footprint fits, and a single artifact larger
// than the whole budget is still admitted alone (the compile is paid;
// caching it can only help until the next insert).
func TestCacheEvictionBytes(t *testing.T) {
	a1, a2 := compileN(t, 20), compileN(t, 21)
	// Budget fits one artifact but not two.
	budget := estimateSize(a1) + estimateSize(a2)/2
	c := New(Config{MaxEntries: 100, MaxBytes: budget, Shards: 1})
	k1 := KeyFor(srcN(20), core.Options{}, "", 0)
	k2 := KeyFor(srcN(21), core.Options{}, "", 0)

	c.Get(k1, func() (*core.Artifact, error) { return a1, nil })
	c.Get(k2, func() (*core.Artifact, error) { return a2, nil })
	if _, ok := c.Lookup(k1); ok {
		t.Fatal("byte budget did not evict the older entry")
	}
	if _, ok := c.Lookup(k2); !ok {
		t.Fatal("newest entry was evicted instead of the tail")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 1 || st.Bytes != estimateSize(a2) {
		t.Fatalf("stats = %+v, want 1 eviction, 1 entry, %d bytes", st, estimateSize(a2))
	}

	// An artifact alone over budget still becomes resident.
	tiny := New(Config{MaxEntries: 100, MaxBytes: 1, Shards: 1})
	tiny.Get(k1, func() (*core.Artifact, error) { return a1, nil })
	if _, ok := tiny.Lookup(k1); !ok {
		t.Fatal("oversized artifact was not admitted alone")
	}
}
