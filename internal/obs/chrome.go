package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteChrome exports a span-tree snapshot as Chrome trace-event JSON (the
// same JSON-array flavour internal/trace.Chrome streams), loadable in
// chrome://tracing and Perfetto's legacy importer:
//
//   - one trace process (pid 0) per tree;
//   - the sequential phase spans (job, admission, queue.wait, run) share
//     thread 0 — they nest in time, so the viewer renders them as a flame;
//   - each shard and lane span gets its own thread, since they overlap in
//     wall time;
//   - one trace tick (ts) is one microsecond, relative to the root start.
//
// Span attributes become the event's args.
func WriteChrome(w io.Writer, root *SpanJSON) error {
	if root == nil {
		return fmt.Errorf("obs: no span tree to export")
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("[")
	n := 0
	emit := func(line string) {
		if n > 0 {
			bw.WriteString(",\n")
		} else {
			bw.WriteString("\n")
		}
		bw.WriteString(line)
		n++
	}
	emit(fmt.Sprintf(`{"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":%q}}`,
		root.Kind+" "+root.Name))
	base := root.Start
	root.Walk(func(s *SpanJSON) {
		tid := int64(0)
		if s.Kind == KindShard || s.Kind == KindLane {
			tid = s.ID
			emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":%d,"args":{"name":%q}}`,
				tid, s.Name))
		}
		name := s.Kind
		if s.Name != "" {
			name = s.Kind + " " + s.Name
		}
		args := "{}"
		if len(s.Attrs) > 0 {
			if b, err := json.Marshal(s.Attrs); err == nil {
				args = string(b)
			}
		}
		ts := s.Start.Sub(base).Microseconds()
		dur := int64(s.DurSec * 1e6)
		if dur < 1 {
			dur = 1 // zero-width spans vanish in the viewer
		}
		emit(fmt.Sprintf(`{"name":%q,"cat":%q,"ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d,"args":%s}`,
			name, s.Kind, ts, dur, tid, args))
	})
	bw.WriteString("\n]\n")
	return bw.Flush()
}
