package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Flight is the always-on flight recorder: bounded rings of recent span
// trees, recent admission decisions, and the last stall snapshots, dumped
// on demand (/debug/flight, SIGQUIT) so a degraded service can explain
// itself after the fact without any tracing having been requested up
// front.
//
// Recording happens only at phase boundaries — admission decisions and
// terminal job transitions — never inside a simulation cycle loop, so an
// attached recorder cannot perturb simulator outputs or rates. Rings
// overwrite oldest-first; memory is bounded by the configured capacities
// regardless of traffic.
type Flight struct {
	mu    sync.Mutex
	trees ringBuf[*Tree]
	adm   ringBuf[AdmissionRecord]
	stall ringBuf[StallSnapshot]
}

// Default ring capacities: span trees dominate the dump's size, admission
// records are tiny, stall snapshots are rare.
const (
	DefaultFlightTrees      = 64
	DefaultFlightAdmissions = 256
	DefaultFlightStalls     = 32
)

// NewFlight returns a recorder with the given ring capacities; zero or
// negative values pick the defaults.
func NewFlight(trees, admissions, stalls int) *Flight {
	if trees <= 0 {
		trees = DefaultFlightTrees
	}
	if admissions <= 0 {
		admissions = DefaultFlightAdmissions
	}
	if stalls <= 0 {
		stalls = DefaultFlightStalls
	}
	return &Flight{
		trees: ringBuf[*Tree]{cap: trees},
		adm:   ringBuf[AdmissionRecord]{cap: admissions},
		stall: ringBuf[StallSnapshot]{cap: stalls},
	}
}

// AdmissionRecord is one admission decision as the flight recorder keeps
// it: enough to reconstruct why the service accepted, queued, or turned
// away recent work.
type AdmissionRecord struct {
	Time   time.Time `json:"time"`
	Tenant string    `json:"tenant"`
	// JobID is zero for rejected submissions (no ID was assigned).
	JobID int64 `json:"job_id,omitempty"`
	// Decision is "fast", "offload", or "rejected:<reason>".
	Decision string `json:"decision"`
	// Cost is the admission-time cost estimate (0 when rejected before
	// costing).
	Cost int64 `json:"cost,omitempty"`
}

// StallSnapshot preserves a run's stall diagnostics at its terminal
// transition — the last-N record of simulations that halted with work
// pending.
type StallSnapshot struct {
	Time time.Time `json:"time"`
	// Job labels the run ("tenant/j12", or a command's run label).
	Job   string `json:"job"`
	Cycle int64  `json:"cycle"`
	// Diags is the simulator's Stalled diagnostics, truncated to the
	// first few lines (a 10^5-cell graph can strand thousands of tokens).
	Diags []string `json:"diags"`
}

// maxStallDiags bounds one snapshot's diagnostic lines.
const maxStallDiags = 12

// RecordTree retains a finished (or still-open) span tree. Nil-safe on
// both receiver and argument.
func (f *Flight) RecordTree(t *Tree) {
	if f == nil || t == nil {
		return
	}
	f.mu.Lock()
	f.trees.push(t)
	f.mu.Unlock()
}

// RecordAdmission retains one admission decision.
func (f *Flight) RecordAdmission(r AdmissionRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.adm.push(r)
	f.mu.Unlock()
}

// RecordStall retains one stall snapshot, truncating the diagnostics.
func (f *Flight) RecordStall(s StallSnapshot) {
	if f == nil {
		return
	}
	if len(s.Diags) > maxStallDiags {
		s.Diags = append(s.Diags[:maxStallDiags:maxStallDiags],
			"... truncated")
	}
	f.mu.Lock()
	f.stall.push(s)
	f.mu.Unlock()
}

// Dump is the flight recorder's exported state, oldest record first in
// each section.
type Dump struct {
	Taken      time.Time         `json:"taken"`
	Spans      []*SpanJSON       `json:"spans"`
	Admissions []AdmissionRecord `json:"admissions"`
	Stalls     []StallSnapshot   `json:"stalls"`
}

// Dump snapshots the recorder. Span trees are re-snapshotted at dump time,
// so trees of still-running jobs show their current shape.
func (f *Flight) Dump() *Dump {
	if f == nil {
		return &Dump{Taken: time.Now()}
	}
	f.mu.Lock()
	trees := f.trees.list()
	adm := f.adm.list()
	stalls := f.stall.list()
	f.mu.Unlock()
	d := &Dump{
		Taken:      time.Now(),
		Admissions: adm,
		Stalls:     stalls,
	}
	// Snapshot outside the flight lock: Tree has its own lock, and a tree
	// mid-recording must not block admission recording.
	for _, t := range trees {
		d.Spans = append(d.Spans, t.Snapshot())
	}
	return d
}

// WriteTo writes the dump as indented JSON.
func (d *Dump) WriteTo(w interface{ Write([]byte) (int, error) }) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Handler serves the dump as JSON — mount at /debug/flight.
func (f *Flight) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		f.Dump().WriteTo(w)
	})
}

// ringBuf is a fixed-capacity overwrite-oldest ring.
type ringBuf[T any] struct {
	cap  int
	buf  []T
	next int // overwrite position once the ring is full
}

func (r *ringBuf[T]) push(v T) {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, v)
		return
	}
	r.buf[r.next] = v
	r.next = (r.next + 1) % r.cap
}

// list returns the retained values oldest-first.
func (r *ringBuf[T]) list() []T {
	if len(r.buf) < r.cap {
		return append([]T(nil), r.buf...)
	}
	out := make([]T, 0, r.cap)
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
