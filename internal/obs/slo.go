package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The SLO engine evaluates declarative objectives over sliding windows of
// good/bad observations and raises multi-window burn-rate alerts — the
// standard SRE construction: an objective "99% of jobs wait less than
// 500ms in the queue" has an error budget of 1%, and the burn rate over a
// window is the observed bad fraction divided by that budget. A burn rate
// of 1 spends the budget exactly at the sustainable pace; an alert fires
// only when BOTH a fast and a slow window burn above the threshold, so a
// single bad event cannot flap the alert while a sustained degradation
// trips it within the fast window.
//
// Percentile objectives reduce to the same machinery: "queue-wait p99 ≤
// 500ms" holds exactly when ≥99% of waits are ≤ 500ms, so the caller
// classifies each wait against the threshold and the target carries the
// percentile.

// SLODef declares one objective. Zero windows/threshold pick defaults.
type SLODef struct {
	// Name labels the objective in metrics and verdicts ("queue_wait").
	Name string
	// Help is the metric HELP text and verdict description.
	Help string
	// Target is the required good fraction, e.g. 0.99; the error budget
	// is 1 - Target.
	Target float64
	// FastWindow and SlowWindow are the two sliding evaluation windows
	// (defaults 1m and 5m). The fast window makes the alert responsive,
	// the slow window makes it sticky against single-event noise.
	FastWindow time.Duration
	SlowWindow time.Duration
	// BurnThreshold is the burn rate both windows must exceed to alert
	// (default 2: the budget is being spent at twice the sustainable
	// pace).
	BurnThreshold float64
	// MinEvents is the fewest fast-window observations required before
	// the objective can alert (default 4), so the first bad event of a
	// quiet service does not trip a 100% burn rate.
	MinEvents int
}

func (d SLODef) withDefaults() SLODef {
	if d.FastWindow <= 0 {
		d.FastWindow = time.Minute
	}
	if d.SlowWindow <= 0 {
		d.SlowWindow = 5 * time.Minute
	}
	if d.SlowWindow < d.FastWindow {
		d.SlowWindow = d.FastWindow
	}
	if d.BurnThreshold <= 0 {
		d.BurnThreshold = 2
	}
	if d.MinEvents <= 0 {
		d.MinEvents = 4
	}
	return d
}

// sloEvent is one timestamped observation.
type sloEvent struct {
	t    time.Time
	good bool
}

// sloState is one objective's sliding window plus lifetime totals.
type sloState struct {
	def    SLODef
	events []sloEvent // time-ordered; pruned to SlowWindow on observe/eval
	good   int64      // lifetime totals, for the _total counters
	bad    int64
}

// SLOEngine evaluates a set of objectives. All methods are safe for
// concurrent use and nil-safe, so recording code never branches on whether
// SLO tracking is attached.
type SLOEngine struct {
	mu    sync.Mutex
	now   func() time.Time // injectable for tests
	order []string
	slos  map[string]*sloState
}

// NewSLOEngine builds an engine from the given objectives.
func NewSLOEngine(defs ...SLODef) *SLOEngine {
	e := &SLOEngine{now: time.Now, slos: map[string]*sloState{}}
	for _, d := range defs {
		d = d.withDefaults()
		if _, dup := e.slos[d.Name]; dup {
			continue
		}
		e.order = append(e.order, d.Name)
		e.slos[d.Name] = &sloState{def: d}
	}
	return e
}

// SetClock overrides the engine's time source (tests). Returns e.
func (e *SLOEngine) SetClock(now func() time.Time) *SLOEngine {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.now = now
	return e
}

// Observe records one good/bad event for the named objective; unknown
// names and nil engines are no-ops.
func (e *SLOEngine) Observe(name string, good bool) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.slos[name]
	if s == nil {
		return
	}
	now := e.now()
	s.events = append(s.events, sloEvent{t: now, good: good})
	if good {
		s.good++
	} else {
		s.bad++
	}
	s.prune(now)
}

// prune drops events older than the slow window.
func (s *sloState) prune(now time.Time) {
	cut := now.Add(-s.def.SlowWindow)
	i := 0
	for i < len(s.events) && s.events[i].t.Before(cut) {
		i++
	}
	if i > 0 {
		s.events = append(s.events[:0], s.events[i:]...)
	}
}

// SLOStatus is one objective's evaluated state.
type SLOStatus struct {
	Name   string  `json:"name"`
	Target float64 `json:"target"`
	// FastSLI/SlowSLI are the good fractions over each window (1.0 when
	// the window is empty: no traffic is not an SLO violation).
	FastSLI float64 `json:"fast_sli"`
	SlowSLI float64 `json:"slow_sli"`
	// FastBurn/SlowBurn are the burn rates: bad fraction over the error
	// budget.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// FastEvents counts fast-window observations (the MinEvents gate).
	FastEvents int `json:"fast_events"`
	// Burning is the multi-window alert state.
	Burning bool `json:"burning"`
	// GoodTotal/BadTotal are lifetime counts.
	GoodTotal int64 `json:"good_total"`
	BadTotal  int64 `json:"bad_total"`
}

// Evaluate returns every objective's current status in declaration order.
func (e *SLOEngine) Evaluate() []SLOStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	out := make([]SLOStatus, 0, len(e.order))
	for _, name := range e.order {
		s := e.slos[name]
		s.prune(now)
		st := SLOStatus{Name: name, Target: s.def.Target, GoodTotal: s.good, BadTotal: s.bad}
		fastCut := now.Add(-s.def.FastWindow)
		var fg, fb, sg, sb int
		for _, ev := range s.events {
			if ev.good {
				sg++
			} else {
				sb++
			}
			if !ev.t.Before(fastCut) {
				if ev.good {
					fg++
				} else {
					fb++
				}
			}
		}
		st.FastEvents = fg + fb
		st.FastSLI, st.FastBurn = sliBurn(fg, fb, s.def.Target)
		st.SlowSLI, st.SlowBurn = sliBurn(sg, sb, s.def.Target)
		st.Burning = st.FastEvents >= s.def.MinEvents &&
			st.FastBurn >= s.def.BurnThreshold && st.SlowBurn >= s.def.BurnThreshold
		out = append(out, st)
	}
	return out
}

// sliBurn computes the good fraction and burn rate of one window. An empty
// window is a perfect SLI; a zero error budget (target 1.0) burns at +Inf
// the moment anything is bad, reported as a large finite rate so the text
// exposition stays parseable.
func sliBurn(good, bad int, target float64) (sli, burn float64) {
	total := good + bad
	if total == 0 {
		return 1, 0
	}
	sli = float64(good) / float64(total)
	budget := 1 - target
	badFrac := float64(bad) / float64(total)
	if budget <= 0 {
		if bad > 0 {
			return sli, 1e9
		}
		return sli, 0
	}
	return sli, badFrac / budget
}

// Burning returns the names of currently-alerting objectives.
func (e *SLOEngine) Burning() []string {
	var names []string
	for _, st := range e.Evaluate() {
		if st.Burning {
			names = append(names, st.Name)
		}
	}
	return names
}

// Verdict renders the greppable one-line summary: "slo: ok" or
// "slo: burning <name>(fast=2.3x,slow=2.1x) ...".
func (e *SLOEngine) Verdict() string {
	sts := e.Evaluate()
	var burning []string
	for _, st := range sts {
		if st.Burning {
			burning = append(burning,
				fmt.Sprintf("%s(fast=%.1fx,slow=%.1fx)", st.Name, st.FastBurn, st.SlowBurn))
		}
	}
	if len(burning) == 0 {
		return "slo: ok"
	}
	sort.Strings(burning)
	return "slo: burning " + strings.Join(burning, " ")
}

// WriteMetrics renders the staticpipe_slo_* Prometheus families in text
// exposition format, shaped to plug into telemetry.NewMux as an extra
// appender.
func (e *SLOEngine) WriteMetrics(w io.Writer) {
	if e == nil {
		return
	}
	sts := e.Evaluate()
	fam := func(name, typ, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	fam("staticpipe_slo_target", "gauge", "Declared objective: required good fraction per SLO.")
	for _, st := range sts {
		fmt.Fprintf(w, "staticpipe_slo_target{slo=%q} %s\n", st.Name, ftoa(st.Target))
	}
	fam("staticpipe_slo_sli", "gauge", "Observed good fraction per SLO and evaluation window.")
	for _, st := range sts {
		fmt.Fprintf(w, "staticpipe_slo_sli{slo=%q,window=\"fast\"} %s\n", st.Name, ftoa(st.FastSLI))
		fmt.Fprintf(w, "staticpipe_slo_sli{slo=%q,window=\"slow\"} %s\n", st.Name, ftoa(st.SlowSLI))
	}
	fam("staticpipe_slo_burn_rate", "gauge", "Error-budget burn rate per SLO and window (1 = sustainable pace).")
	for _, st := range sts {
		fmt.Fprintf(w, "staticpipe_slo_burn_rate{slo=%q,window=\"fast\"} %s\n", st.Name, ftoa(st.FastBurn))
		fmt.Fprintf(w, "staticpipe_slo_burn_rate{slo=%q,window=\"slow\"} %s\n", st.Name, ftoa(st.SlowBurn))
	}
	fam("staticpipe_slo_burning", "gauge", "Multi-window burn-rate alert state per SLO (1 = alerting).")
	for _, st := range sts {
		v := 0
		if st.Burning {
			v = 1
		}
		fmt.Fprintf(w, "staticpipe_slo_burning{slo=%q} %d\n", st.Name, v)
	}
	fam("staticpipe_slo_events_total", "counter", "Lifetime observations per SLO, by classification.")
	for _, st := range sts {
		fmt.Fprintf(w, "staticpipe_slo_events_total{slo=%q,result=\"good\"} %d\n", st.Name, st.GoodTotal)
		fmt.Fprintf(w, "staticpipe_slo_events_total{slo=%q,result=\"bad\"} %d\n", st.Name, st.BadTotal)
	}
}

// ftoa renders a float sample value.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
