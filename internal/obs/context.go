package obs

import "context"

// ctxKey is the private context key spans propagate under.
type ctxKey struct{}

// WithSpan returns a context carrying sp; simulator cores and compilation
// phases retrieve it with SpanFrom and attach their children. A nil span
// returns ctx unchanged.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFrom returns the active span carried by ctx, or nil. Nil contexts are
// fine: a detached run pays exactly this nil check, preserving the
// zero-perturbation contract.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
