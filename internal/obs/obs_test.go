package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeShape(t *testing.T) {
	tr := NewTree(KindJob, "t0/j1")
	root := tr.Root()
	adm := root.Child(KindAdmission, "")
	adm.Set("cost", int64(1234))
	adm.End()
	run := root.Child(KindRun, "exec")
	run.Set("cycles", 42)
	for i := 0; i < 2; i++ {
		sh := run.ChildAt(KindShard, "shard[0]", run.StartTime(), time.Now())
		sh.Set("firings", int64(7))
	}
	run.End()
	root.End()

	j := tr.Snapshot()
	if j.Kind != KindJob || j.Name != "t0/j1" {
		t.Fatalf("root = %s %q", j.Kind, j.Name)
	}
	if len(j.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(j.Children))
	}
	if j.Children[0].Kind != KindAdmission || j.Children[1].Kind != KindRun {
		t.Fatalf("child kinds = %s, %s", j.Children[0].Kind, j.Children[1].Kind)
	}
	if got := j.Children[0].Attrs["cost"]; got != int64(1234) {
		t.Fatalf("admission cost attr = %v", got)
	}
	runJ := j.Find(KindRun)
	if runJ == nil || len(runJ.Children) != 2 {
		t.Fatalf("run span children = %+v", runJ)
	}
	if j.Open || runJ.Open {
		t.Fatalf("ended spans still open")
	}
	// The tree must marshal directly.
	if _, err := json.Marshal(tr); err != nil {
		t.Fatalf("marshal tree: %v", err)
	}
}

func TestNilSpanSafe(t *testing.T) {
	var sp *Span
	sp.End()
	sp.Set("k", 1)
	if c := sp.Child(KindRun, "x"); c != nil {
		t.Fatalf("nil span child = %v", c)
	}
	if got := SpanFrom(nil); got != nil {
		t.Fatalf("SpanFrom(nil) = %v", got)
	}
	if got := SpanFrom(context.Background()); got != nil {
		t.Fatalf("SpanFrom(empty ctx) = %v", got)
	}
	var tr *Tree
	if tr.Root() != nil || tr.Snapshot() != nil {
		t.Fatalf("nil tree not inert")
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewTree(KindJob, "j")
	ctx := WithSpan(context.Background(), tr.Root())
	if got := SpanFrom(ctx); got != tr.Root() {
		t.Fatalf("SpanFrom = %v, want root", got)
	}
	// WithSpan(nil span) leaves the context unchanged.
	if ctx2 := WithSpan(ctx, nil); SpanFrom(ctx2) != tr.Root() {
		t.Fatalf("WithSpan(nil) dropped the active span")
	}
}

func TestSnapshotWhileRecordingIsConsistent(t *testing.T) {
	tr := NewTree(KindJob, "race")
	root := tr.Root()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c := root.Child(KindRun, "r")
			c.Set("i", i)
			c.End()
		}
	}()
	for i := 0; i < 200; i++ {
		j := tr.Snapshot()
		if j == nil || j.Kind != KindJob {
			t.Fatalf("snapshot corrupted: %+v", j)
		}
	}
	close(stop)
	wg.Wait()
}

func TestWriteChrome(t *testing.T) {
	tr := NewTree(KindJob, "j1")
	run := tr.Root().Child(KindRun, "exec")
	run.ChildAt(KindShard, "shard[0]", run.StartTime(), time.Now()).Set("firings", 3)
	run.End()
	tr.Root().End()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Snapshot()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome output is not a JSON array: %v\n%s", err, buf.String())
	}
	var complete int
	for _, e := range events {
		if e["ph"] == "X" {
			complete++
		}
	}
	if complete != 3 { // job, run, shard
		t.Fatalf("complete events = %d, want 3\n%s", complete, buf.String())
	}
	if err := WriteChrome(&buf, nil); err == nil {
		t.Fatalf("WriteChrome(nil) should error")
	}
}

func TestFlightRingsBoundAndOrder(t *testing.T) {
	f := NewFlight(2, 3, 2)
	for i := 0; i < 5; i++ {
		tr := NewTree(KindJob, string(rune('a'+i)))
		tr.Root().End()
		f.RecordTree(tr)
		f.RecordAdmission(AdmissionRecord{Tenant: "t", JobID: int64(i), Decision: "fast"})
	}
	d := f.Dump()
	if len(d.Spans) != 2 {
		t.Fatalf("trees retained = %d, want 2", len(d.Spans))
	}
	if d.Spans[0].Name != "d" || d.Spans[1].Name != "e" {
		t.Fatalf("tree order = %s, %s (want oldest-first d, e)", d.Spans[0].Name, d.Spans[1].Name)
	}
	if len(d.Admissions) != 3 || d.Admissions[0].JobID != 2 {
		t.Fatalf("admissions = %+v", d.Admissions)
	}
	// Stall truncation.
	diags := make([]string, 40)
	for i := range diags {
		diags[i] = "stranded"
	}
	f.RecordStall(StallSnapshot{Job: "t/j1", Diags: diags})
	d = f.Dump()
	if n := len(d.Stalls[0].Diags); n != maxStallDiags+1 {
		t.Fatalf("stall diags = %d, want %d", n, maxStallDiags+1)
	}
	// Nil recorder is inert.
	var nilF *Flight
	nilF.RecordTree(nil)
	nilF.RecordAdmission(AdmissionRecord{})
	nilF.RecordStall(StallSnapshot{})
	if nilF.Dump() == nil {
		t.Fatalf("nil flight Dump = nil")
	}
}

func TestFlightConcurrentDump(t *testing.T) {
	f := NewFlight(16, 16, 16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr := NewTree(KindJob, "j")
				tr.Root().Child(KindRun, "r").End()
				f.RecordTree(tr)
				f.RecordAdmission(AdmissionRecord{JobID: int64(i)})
				f.RecordStall(StallSnapshot{Job: "j"})
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if d := f.Dump(); d == nil {
			t.Fatal("nil dump")
		}
	}
	close(stop)
	wg.Wait()
}

// sloAt builds an engine with a controllable clock.
func sloAt(t0 time.Time, def SLODef) (*SLOEngine, *time.Time) {
	now := t0
	e := NewSLOEngine(def).SetClock(func() time.Time { return now })
	return e, &now
}

func TestSLOCleanTrafficStaysOK(t *testing.T) {
	e, _ := sloAt(time.Unix(1000, 0), SLODef{Name: "queue_wait", Target: 0.99})
	for i := 0; i < 100; i++ {
		e.Observe("queue_wait", true)
	}
	sts := e.Evaluate()
	if len(sts) != 1 || sts[0].Burning {
		t.Fatalf("clean traffic burning: %+v", sts)
	}
	if sts[0].FastSLI != 1 || sts[0].FastBurn != 0 {
		t.Fatalf("clean SLI/burn = %v/%v", sts[0].FastSLI, sts[0].FastBurn)
	}
	if v := e.Verdict(); v != "slo: ok" {
		t.Fatalf("verdict = %q", v)
	}
}

func TestSLOSustainedBadTrafficBurns(t *testing.T) {
	e, _ := sloAt(time.Unix(1000, 0), SLODef{Name: "queue_wait", Target: 0.99})
	for i := 0; i < 20; i++ {
		e.Observe("queue_wait", i%2 == 0) // 50% bad: burn 50x budget
	}
	sts := e.Evaluate()
	if !sts[0].Burning {
		t.Fatalf("sustained bad traffic not burning: %+v", sts[0])
	}
	v := e.Verdict()
	if !strings.HasPrefix(v, "slo: burning queue_wait") {
		t.Fatalf("verdict = %q", v)
	}
}

func TestSLOMinEventsGate(t *testing.T) {
	e, _ := sloAt(time.Unix(1000, 0), SLODef{Name: "errs", Target: 0.99, MinEvents: 4})
	e.Observe("errs", false) // one bad event alone must not alert
	if sts := e.Evaluate(); sts[0].Burning {
		t.Fatalf("single event tripped the alert: %+v", sts[0])
	}
}

func TestSLOWindowSlides(t *testing.T) {
	e, now := sloAt(time.Unix(1000, 0),
		SLODef{Name: "w", Target: 0.9, FastWindow: time.Minute, SlowWindow: 5 * time.Minute})
	for i := 0; i < 10; i++ {
		e.Observe("w", false)
	}
	if sts := e.Evaluate(); !sts[0].Burning {
		t.Fatalf("not burning while bad events are fresh")
	}
	// Advance past the fast window: fast burn clears, slow still sees them.
	*now = now.Add(2 * time.Minute)
	sts := e.Evaluate()
	if sts[0].FastEvents != 0 {
		t.Fatalf("fast window did not slide: %d events", sts[0].FastEvents)
	}
	if sts[0].Burning {
		t.Fatalf("alert did not clear after the fast window slid")
	}
	if sts[0].SlowBurn == 0 {
		t.Fatalf("slow window lost its events")
	}
	// Advance past the slow window: everything clears, totals remain.
	*now = now.Add(10 * time.Minute)
	sts = e.Evaluate()
	if sts[0].SlowBurn != 0 || sts[0].SlowSLI != 1 {
		t.Fatalf("slow window did not slide: %+v", sts[0])
	}
	if sts[0].BadTotal != 10 {
		t.Fatalf("lifetime totals pruned: %+v", sts[0])
	}
}

func TestSLOMetricsExposition(t *testing.T) {
	e, _ := sloAt(time.Unix(1000, 0), SLODef{Name: "queue_wait", Target: 0.99})
	e.Observe("queue_wait", true)
	e.Observe("queue_wait", false)
	var buf bytes.Buffer
	e.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE staticpipe_slo_target gauge",
		`staticpipe_slo_sli{slo="queue_wait",window="fast"}`,
		`staticpipe_slo_burn_rate{slo="queue_wait",window="slow"}`,
		`staticpipe_slo_burning{slo="queue_wait"}`,
		`staticpipe_slo_events_total{slo="queue_wait",result="good"} 1`,
		`staticpipe_slo_events_total{slo="queue_wait",result="bad"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Nil engine writes nothing and observes nothing.
	var nilE *SLOEngine
	nilE.Observe("x", true)
	nilE.WriteMetrics(&buf)
}
