// Package obs is the end-to-end job observability layer: lightweight span
// trees tracing where a job's wall-clock went (admission → queue → run →
// per-shard / per-lane execution), an always-on bounded flight recorder of
// recent span trees, admission decisions, and stall snapshots, and a
// declarative SLO engine evaluating sliding-window burn rates over the
// service's outcome stream.
//
// Spans are deliberately lighter than a distributed-tracing SDK: one
// process, one mutex per tree, no sampling, no export pipeline. A span is
// created when a phase starts, ended when it finishes, and annotated with
// whatever the phase learned (cycles simulated, estimate-vs-actual cost,
// stall diagnostics). Trees propagate through context.Context — the same
// context that already carries cancellation into both simulator hot loops —
// so the cores can attach per-shard and per-lane children without any new
// plumbing. All recording happens at phase boundaries, never inside a
// simulation cycle loop: an attached span changes no simulator output and
// stays within the progress-counter zero-perturbation bound.
//
// Every method is safe on a nil *Span and a nil *Tree, mirroring the
// nil-safe tracer discipline of internal/trace: code paths annotate
// unconditionally and detached runs pay one nil check.
package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// Span kinds used across the service and the simulator cores. Kinds are
// open-ended strings; these are the ones the span tree of a dfserve job is
// built from.
const (
	KindJob       = "job"            // root: one client job, submission to terminal state
	KindAdmission = "admission"      // compile + cost estimate + admission decision
	KindCache     = "cache.lookup"   // artifact-cache probe inside admission (hit/miss/coalesced)
	KindQueueWait = "queue.wait"     // admitted to the offload queue until a worker picks it up
	KindPlacement = "placement.plan" // contention-aware placement planning (dftrace/dfsim -place)
	KindRun       = "run"            // one simulator execution
	KindShard     = "shard"          // one shard of the sharded parallel engine
	KindLane      = "lane"           // one lane of a batched run
)

// Attr is one ordered key/value annotation on a span. Values should be
// strings, bools, integers, or floats so the JSON export stays flat.
type Attr struct {
	K string
	V any
}

// Span is one timed phase in a tree. Create children with Child/ChildAt,
// close with End, annotate with Set. All methods are safe for concurrent
// use and safe on a nil receiver (no-ops), so recording code never branches
// on whether observability is attached.
type Span struct {
	tree     *Tree
	id       int64
	parent   int64
	kind     string
	name     string
	start    time.Time
	end      time.Time // zero while open
	attrs    []Attr
	children []*Span
}

// Tree is one span tree with its own lock and ID space. The zero value is
// not usable; call NewTree.
type Tree struct {
	mu     sync.Mutex
	nextID int64
	root   *Span
}

// NewTree starts a tree whose root span begins now.
func NewTree(kind, name string) *Tree {
	t := &Tree{nextID: 1}
	t.root = &Span{tree: t, id: 1, kind: kind, name: name, start: time.Now()}
	return t
}

// Root returns the tree's root span (nil on a nil tree).
func (t *Tree) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Child starts a child span of s beginning now.
func (s *Span) Child(kind, name string) *Span {
	return s.ChildAt(kind, name, time.Now(), time.Time{})
}

// ChildAt records a child span with explicit bounds — the shard/lane
// recording path, where the interval is known only after the run: a zero
// end leaves the span open.
func (s *Span) ChildAt(kind, name string, start, end time.Time) *Span {
	if s == nil {
		return nil
	}
	t := s.tree
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	c := &Span{tree: t, id: t.nextID, parent: s.id, kind: kind, name: name, start: start, end: end}
	s.children = append(s.children, c)
	return c
}

// End closes the span now; closing twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tree.mu.Lock()
	defer s.tree.mu.Unlock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
}

// EndAt closes the span at an explicit instant (first close wins).
func (s *Span) EndAt(at time.Time) {
	if s == nil {
		return
	}
	s.tree.mu.Lock()
	defer s.tree.mu.Unlock()
	if s.end.IsZero() {
		s.end = at
	}
}

// Set appends one annotation. Repeated keys append rather than overwrite;
// the export shows the last value.
func (s *Span) Set(key string, v any) {
	if s == nil {
		return
	}
	s.tree.mu.Lock()
	defer s.tree.mu.Unlock()
	s.attrs = append(s.attrs, Attr{K: key, V: v})
}

// SetName replaces the span's name — for identifiers assigned after the
// span opened, like a job ID the admission controller hands out mid-phase.
func (s *Span) SetName(name string) {
	if s == nil {
		return
	}
	s.tree.mu.Lock()
	defer s.tree.mu.Unlock()
	s.name = name
}

// StartTime returns when the span began (zero on nil).
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	s.tree.mu.Lock()
	defer s.tree.mu.Unlock()
	return s.start
}

// SpanJSON is the wire shape of one span in the exported tree.
type SpanJSON struct {
	ID     int64          `json:"id"`
	Kind   string         `json:"kind"`
	Name   string         `json:"name,omitempty"`
	Start  time.Time      `json:"start"`
	DurSec float64        `json:"duration_sec"`
	Open   bool           `json:"open,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
	// Children are ordered by creation, which is also start order for the
	// service's phase spans.
	Children []*SpanJSON `json:"children,omitempty"`
}

// Snapshot renders the tree as a consistent JSON-able copy; open spans
// report their duration as of now. Safe to call while spans are still
// being recorded.
func (t *Tree) Snapshot() *SpanJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	return t.root.snapshotLocked(now)
}

func (s *Span) snapshotLocked(now time.Time) *SpanJSON {
	j := &SpanJSON{ID: s.id, Kind: s.kind, Name: s.name, Start: s.start}
	end := s.end
	if end.IsZero() {
		j.Open = true
		end = now
	}
	j.DurSec = end.Sub(s.start).Seconds()
	if len(s.attrs) > 0 {
		j.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			j.Attrs[a.K] = a.V
		}
	}
	for _, c := range s.children {
		j.Children = append(j.Children, c.snapshotLocked(now))
	}
	return j
}

// MarshalJSON renders the tree via Snapshot, so a *Tree can be embedded
// directly in JSON responses.
func (t *Tree) MarshalJSON() ([]byte, error) { return json.Marshal(t.Snapshot()) }

// Walk visits every span of a snapshot depth-first.
func (j *SpanJSON) Walk(f func(*SpanJSON)) {
	if j == nil {
		return
	}
	f(j)
	for _, c := range j.Children {
		c.Walk(f)
	}
}

// Find returns the first span of the given kind in depth-first order, or
// nil.
func (j *SpanJSON) Find(kind string) *SpanJSON {
	var hit *SpanJSON
	j.Walk(func(s *SpanJSON) {
		if hit == nil && s.Kind == kind {
			hit = s
		}
	})
	return hit
}
