package trace

import (
	"sync"
	"testing"
)

// A Live sink must tolerate one writer emitting while many readers
// snapshot: the snapshots are internally consistent deep copies, and (under
// -race) the interleaving is free of data races.
func TestLiveConcurrentSnapshot(t *testing.T) {
	l := NewLive()
	l.Start(Meta{Cells: []string{"a", "b"}, Units: []string{"PE0", "FU0"}})

	const cycles = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for c := int64(0); c < cycles; c++ {
			l.Emit(Event{Cycle: c, Kind: KindFiring, Cell: 0, Unit: 0, Port: -1, Src: -1, Dst: -1})
			l.Emit(Event{Cycle: c, Kind: KindFiring, Cell: 1, Unit: 0, Port: -1, Src: -1, Dst: -1})
			l.Emit(Event{Cycle: c, Kind: KindDeliver, Cell: 0, Port: 0, Unit: -1, Src: 0, Dst: 1, Packet: PacketOp, Aux: 2})
			l.Emit(Event{Cycle: c, Kind: KindFUStart, Cell: 0, Port: -1, Unit: 1, Src: -1, Dst: -1, Aux: 4})
			l.Emit(Event{Cycle: c, Kind: KindStall, Cell: 1, Port: -1, Unit: -1, Src: -1, Dst: -1, Reason: ReasonOperandWait})
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last int64
			for i := 0; i < 200; i++ {
				s := l.Snapshot()
				// Both cells see the same firing events per cycle, so a
				// consistent snapshot never shows them more than one apart.
				if len(s.Cells) >= 2 {
					d := s.Cells[0].Firings - s.Cells[1].Firings
					if d < 0 {
						d = -d
					}
					if d > 1 {
						t.Errorf("torn snapshot: firings %d vs %d", s.Cells[0].Firings, s.Cells[1].Firings)
						return
					}
				}
				// Events only grows.
				if s.Events < last {
					t.Errorf("snapshot went backwards: %d after %d", s.Events, last)
					return
				}
				last = s.Events
			}
		}()
	}
	wg.Wait()

	final := l.Snapshot()
	if got := final.Cells[0].Firings; got != cycles {
		t.Fatalf("cell 0 firings = %d, want %d", got, cycles)
	}
	if got := final.Cells[0].Interval.Count; got != cycles-1 {
		t.Fatalf("cell 0 interval observations = %d, want %d", got, cycles-1)
	}
	if got := final.Units[1].Service.Count; got != cycles {
		t.Fatalf("FU service observations = %d, want %d", got, cycles)
	}
}

// Snapshot is a deep copy: mutating the original afterwards must not leak
// into an earlier snapshot.
func TestSnapshotIsDeepCopy(t *testing.T) {
	l := NewLive()
	l.Start(Meta{Cells: []string{"x"}})
	l.Emit(Event{Cycle: 0, Kind: KindFiring, Cell: 0, Port: -1, Unit: -1, Src: -1, Dst: -1})
	l.Emit(Event{Cycle: 2, Kind: KindFiring, Cell: 0, Port: -1, Unit: -1, Src: -1, Dst: -1})
	snap := l.Snapshot()
	for c := int64(4); c < 100; c += 2 {
		l.Emit(Event{Cycle: c, Kind: KindFiring, Cell: 0, Port: -1, Unit: -1, Src: -1, Dst: -1})
	}
	if snap.Cells[0].Firings != 2 {
		t.Fatalf("snapshot firings = %d, want 2 (frozen)", snap.Cells[0].Firings)
	}
	if snap.Cells[0].Interval.Count != 1 {
		t.Fatalf("snapshot intervals = %d, want 1 (frozen)", snap.Cells[0].Interval.Count)
	}
	if live := l.Snapshot(); live.Cells[0].Firings != 50 {
		t.Fatalf("live firings = %d, want 50", live.Cells[0].Firings)
	}
}

// The FU service-time reconstruction pairs each fu-start with the oldest
// pending operation delivery (the FU queue is FIFO): wait + latency.
func TestFUServiceTimes(t *testing.T) {
	m := NewMetrics()
	m.Start(Meta{Units: []string{"PE0", "FU0"}})
	ev := func(cycle int64, k Kind, aux int64) {
		e := Event{Cycle: cycle, Kind: k, Cell: 0, Port: -1, Unit: -1, Src: 0, Dst: 1, Packet: PacketOp, Aux: aux}
		if k == KindFUStart {
			e.Unit = 1
			e.Src, e.Dst = -1, -1
		}
		m.Emit(e)
	}
	ev(10, KindDeliver, 2) // op A delivered at 10
	ev(11, KindDeliver, 2) // op B delivered at 11
	ev(10, KindFUStart, 4) // A starts immediately: service = 0 wait + 4
	ev(13, KindFUStart, 4) // B waited 2 cycles: service = 2 + 4
	svc := m.Units[1].Service
	if svc.Count != 2 {
		t.Fatalf("service observations = %d, want 2", svc.Count)
	}
	if svc.Sum != 4+6 {
		t.Fatalf("service sum = %d, want 10 (4 and 6 cycles)", svc.Sum)
	}
}
