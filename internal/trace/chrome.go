package trace

import (
	"bufio"
	"fmt"
	"io"
)

// Chrome streams the run as Chrome trace-event JSON (the JSON-array flavour)
// consumable by chrome://tracing and Perfetto's legacy importer. The mapping:
//
//   - one trace "process" (pid) per machine endpoint — PE, FU, or AM — with
//     pid 0 for the firing-rule model, which has no endpoints;
//   - one trace "thread" (tid) per instruction cell;
//   - a cell firing is a complete event (ph "X") of one cycle;
//   - packet sends/deliveries, token/ack arrivals, and FU initiation and
//     completion are instant events (ph "i");
//   - one trace tick (ts) equals one machine cycle.
//
// Stall events are omitted by default (one per stalled cell per cycle swamps
// the viewer); set Stalls to include them as instants.
type Chrome struct {
	w       *bufio.Writer
	meta    Meta
	started bool
	closed  bool
	count   int64
	err     error

	// Stalls includes KindStall events in the export.
	Stalls bool
	// Packets includes KindSend/KindDeliver/KindToken/KindAck events
	// (default true).
	Packets bool
}

// NewChrome returns an exporter writing to w. Call Close to terminate the
// JSON array and flush.
func NewChrome(w io.Writer) *Chrome {
	return &Chrome{w: bufio.NewWriter(w), Packets: true}
}

func (c *Chrome) begin() {
	if c.started || c.closed {
		return
	}
	c.started = true
	c.w.WriteString("[")
}

func (c *Chrome) sep() {
	if c.count > 0 {
		c.w.WriteString(",\n")
	} else {
		c.w.WriteString("\n")
	}
	c.count++
}

// Start writes process/thread naming metadata so the viewer shows cell and
// endpoint names instead of bare ids.
func (c *Chrome) Start(meta Meta) {
	c.meta = meta
	c.begin()
	for u, name := range meta.Units {
		c.sep()
		fmt.Fprintf(c.w, `{"name":"process_name","ph":"M","ts":0,"pid":%d,"tid":0,"args":{"name":%q}}`, u, name)
	}
	if len(meta.Units) == 0 {
		c.sep()
		fmt.Fprintf(c.w, `{"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"firing-rule simulator"}}`)
	}
	for id, name := range meta.Cells {
		pid := 0
		if meta.CellUnit != nil && id < len(meta.CellUnit) {
			pid = meta.CellUnit[id]
		}
		c.sep()
		fmt.Fprintf(c.w, `{"name":"thread_name","ph":"M","ts":0,"pid":%d,"tid":%d,"args":{"name":%q}}`, pid, id, name)
	}
}

func (c *Chrome) pidOf(e Event) int {
	if e.Unit >= 0 {
		return int(e.Unit)
	}
	if e.Cell >= 0 && c.meta.CellUnit != nil && int(e.Cell) < len(c.meta.CellUnit) {
		return c.meta.CellUnit[e.Cell]
	}
	return 0
}

// Emit writes one event.
func (c *Chrome) Emit(e Event) {
	if c.closed {
		return
	}
	c.begin()
	switch e.Kind {
	case KindFiring:
		c.sep()
		fmt.Fprintf(c.w, `{"name":%q,"cat":"firing","ph":"X","ts":%d,"dur":1,"pid":%d,"tid":%d}`,
			c.meta.CellName(int(e.Cell)), e.Cycle, c.pidOf(e), e.Cell)
	case KindStall:
		if !c.Stalls {
			return
		}
		c.sep()
		fmt.Fprintf(c.w, `{"name":"stall: %s","cat":"stall","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"cell":%q}}`,
			e.Reason, e.Cycle, c.pidOf(e), e.Cell, c.meta.CellName(int(e.Cell)))
	case KindSend, KindDeliver:
		if !c.Packets {
			return
		}
		c.sep()
		pid := int(e.Src)
		if e.Kind == KindDeliver {
			pid = int(e.Dst)
		}
		if pid < 0 {
			pid = 0
		}
		tid := e.Cell
		if tid < 0 {
			tid = 0
		}
		fmt.Fprintf(c.w, `{"name":"%s %s","cat":"packet","ph":"i","s":"p","ts":%d,"pid":%d,"tid":%d,"args":{"src":%q,"dst":%q,"transit":%d}}`,
			e.Kind, e.Packet, e.Cycle, pid, tid, c.meta.UnitName(int(e.Src)), c.meta.UnitName(int(e.Dst)), e.Aux)
	case KindToken, KindAck:
		if !c.Packets {
			return
		}
		c.sep()
		fmt.Fprintf(c.w, `{"name":%q,"cat":"packet","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"port":%d}}`,
			e.Kind.String(), e.Cycle, c.pidOf(e), e.Cell, e.Port)
	case KindFUStart, KindFUDone:
		c.sep()
		fmt.Fprintf(c.w, `{"name":"%s","cat":"fu","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"cell":%q,"latency":%d}}`,
			e.Kind, e.Cycle, e.Unit, e.Cell, c.meta.CellName(int(e.Cell)), e.Aux)
	}
}

// Close terminates the JSON array and flushes. The exporter ignores events
// after Close.
func (c *Chrome) Close() error {
	if c.closed {
		return c.err
	}
	c.begin()
	c.closed = true
	c.w.WriteString("\n]\n")
	c.err = c.w.Flush()
	return c.err
}
