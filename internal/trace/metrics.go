package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// PhaseStat records one compilation phase (a compiler pass or other
// compile-time stage) for observability reports: wall time and graph size
// around the phase. It mirrors passes.Stat without importing the compiler.
type PhaseStat struct {
	Name                    string
	Wall                    time.Duration
	CellsBefore, CellsAfter int
	ArcsBefore, ArcsAfter   int
}

// CellMetrics aggregates one instruction cell's observed behaviour.
type CellMetrics struct {
	// Firings counts firings; First/Last are the first and last firing
	// cycles.
	Firings     int64
	First, Last int64
	// OperandWait / AckWait / UnitBusy count cycles the cell was observed
	// stalled for each reason (one stall event per cell per cycle).
	OperandWait int64
	AckWait     int64
	UnitBusy    int64
	// Tokens and Acks count arrivals at (tokens) and for (acks) the cell.
	Tokens int64
	Acks   int64
	// Interval is the distribution of inter-firing intervals in cycles —
	// the per-cell shape behind the mean AchievedII, distinguishing a fill
	// transient (a few long intervals, tight steady state) from a
	// structural stall (every interval long).
	Interval Histogram
}

// AchievedII returns the cell's mean inter-firing interval in cycles over
// the whole run, the measured counterpart of the paper's "once every two
// instruction times". Returns 0 for fewer than two firings.
func (c *CellMetrics) AchievedII() float64 {
	if c.Firings < 2 {
		return 0
	}
	return float64(c.Last-c.First) / float64(c.Firings-1)
}

// StallCycles returns the total observed stall cycles.
func (c *CellMetrics) StallCycles() int64 { return c.OperandWait + c.AckWait + c.UnitBusy }

// UnitMetrics aggregates one machine endpoint (PE, FU, or AM).
type UnitMetrics struct {
	// Firings counts instructions retired at the endpoint (its PE/AM
	// instruction bandwidth is one per cycle).
	Firings int64
	// FUOps counts operations initiated when the endpoint is a function
	// unit.
	FUOps int64
	// Sent / Delivered count packets leaving from and arriving at the
	// endpoint. The crossbar serializes one delivery per endpoint per
	// cycle, so Delivered/cycles ≈ 1 is a saturated network port.
	Sent      int64
	Delivered int64
	// TransitSum accumulates delivered packets' transit cycles; the mean
	// transit minus the configured network delay is pure queueing.
	TransitSum int64
	// Transit is the distribution of delivered-packet transit times at the
	// endpoint (queueing included), the shape behind MeanTransit.
	Transit Histogram
	// Service is the distribution of function-unit service times: for each
	// operation, the cycles from its operation packet's delivery at the FU
	// until initiation (queue wait) plus the pipeline latency. Populated
	// only for FU endpoints.
	Service Histogram
}

// Metrics is the per-cell/per-unit aggregating sink. It holds O(cells +
// endpoints) state regardless of run length.
type Metrics struct {
	meta    Meta
	Cells   []CellMetrics
	Units   []UnitMetrics
	Packets [NumPacketKinds]int64 // sends by packet kind
	Events  int64
	// Phases records compile-time phase statistics (see RecordPhase);
	// compilation happens before any run events arrive.
	Phases    []PhaseStat
	lastCycle int64
	// opPend tracks, per FU endpoint, the delivery cycles of operation
	// packets that have arrived but not yet initiated. The machine's FU
	// initiation queue is strictly FIFO, so pairing each fu-start with the
	// oldest pending delivery reconstructs the exact queue wait.
	opPend []pendQueue
}

// pendQueue is a FIFO of delivery cycles with a popped-prefix head index,
// compacted when the dead prefix dominates.
type pendQueue struct {
	q    []int64
	head int
}

func (p *pendQueue) push(v int64) { p.q = append(p.q, v) }

func (p *pendQueue) pop() (int64, bool) {
	if p.head >= len(p.q) {
		return 0, false
	}
	v := p.q[p.head]
	p.head++
	if p.head == len(p.q) {
		p.q = p.q[:0]
		p.head = 0
	} else if p.head > 64 && p.head*2 > len(p.q) {
		n := copy(p.q, p.q[p.head:])
		p.q = p.q[:n]
		p.head = 0
	}
	return v, true
}

func (p *pendQueue) clone() pendQueue {
	return pendQueue{q: append([]int64(nil), p.q...), head: p.head}
}

// RecordPhase appends one compile-phase record. Compilers call this once
// per executed pass so compile-time cost shows up next to run-time
// behaviour in the same observability sink.
func (m *Metrics) RecordPhase(p PhaseStat) { m.Phases = append(m.Phases, p) }

// NewMetrics returns an empty aggregator.
func NewMetrics() *Metrics { return &Metrics{lastCycle: -1} }

// Start sizes the aggregates from the run metadata.
func (m *Metrics) Start(meta Meta) {
	m.meta = meta
	if n := len(meta.Cells); n > len(m.Cells) {
		m.Cells = append(m.Cells, make([]CellMetrics, n-len(m.Cells))...)
	}
	if n := len(meta.Units); n > len(m.Units) {
		m.Units = append(m.Units, make([]UnitMetrics, n-len(m.Units))...)
	}
}

// Meta returns the metadata announced by Start.
func (m *Metrics) Meta() Meta { return m.meta }

func (m *Metrics) cell(id int32) *CellMetrics {
	for int(id) >= len(m.Cells) {
		m.Cells = append(m.Cells, CellMetrics{})
	}
	return &m.Cells[id]
}

func (m *Metrics) unit(id int32) *UnitMetrics {
	for int(id) >= len(m.Units) {
		m.Units = append(m.Units, UnitMetrics{})
	}
	return &m.Units[id]
}

func (m *Metrics) pend(unit int32) *pendQueue {
	for int(unit) >= len(m.opPend) {
		m.opPend = append(m.opPend, pendQueue{})
	}
	return &m.opPend[unit]
}

// Clone returns a deep copy of the aggregates: the per-cell and per-unit
// slices (histograms are value types, so the copy is complete), the packet
// counters, and the phase records. The Meta is shared — it is written once
// at Start and read-only afterwards. Clone is the snapshot primitive the
// concurrency-safe Live wrapper builds on.
func (m *Metrics) Clone() *Metrics {
	c := &Metrics{
		meta:      m.meta,
		Cells:     append([]CellMetrics(nil), m.Cells...),
		Units:     append([]UnitMetrics(nil), m.Units...),
		Packets:   m.Packets,
		Events:    m.Events,
		Phases:    append([]PhaseStat(nil), m.Phases...),
		lastCycle: m.lastCycle,
	}
	if len(m.opPend) > 0 {
		c.opPend = make([]pendQueue, len(m.opPend))
		for i := range m.opPend {
			c.opPend[i] = m.opPend[i].clone()
		}
	}
	return c
}

// Emit aggregates one event.
func (m *Metrics) Emit(e Event) {
	m.Events++
	if e.Cycle > m.lastCycle {
		m.lastCycle = e.Cycle
	}
	switch e.Kind {
	case KindFiring:
		c := m.cell(e.Cell)
		if c.Firings == 0 {
			c.First = e.Cycle
		} else {
			c.Interval.Observe(e.Cycle - c.Last)
		}
		c.Firings++
		c.Last = e.Cycle
		if e.Unit >= 0 {
			m.unit(e.Unit).Firings++
		}
	case KindToken:
		m.cell(e.Cell).Tokens++
	case KindAck:
		m.cell(e.Cell).Acks++
	case KindSend:
		m.Packets[e.Packet]++
		if e.Src >= 0 {
			m.unit(e.Src).Sent++
		}
	case KindDeliver:
		if e.Dst >= 0 {
			u := m.unit(e.Dst)
			u.Delivered++
			u.TransitSum += e.Aux
			u.Transit.Observe(e.Aux)
		}
		switch e.Packet {
		case PacketResult:
			if e.Cell >= 0 {
				m.cell(e.Cell).Tokens++
			}
		case PacketAck:
			if e.Cell >= 0 {
				m.cell(e.Cell).Acks++
			}
		case PacketOp:
			if e.Dst >= 0 {
				m.pend(e.Dst).push(e.Cycle)
			}
		}
	case KindFUStart:
		if e.Unit >= 0 {
			u := m.unit(e.Unit)
			u.FUOps++
			// Service time = queue wait since the operation packet's
			// delivery plus the pipeline latency (Aux). FUs initiate in
			// delivery order, so the oldest pending delivery is this op's.
			if t, ok := m.pend(e.Unit).pop(); ok {
				u.Service.Observe(e.Cycle - t + e.Aux)
			}
		}
	case KindStall:
		c := m.cell(e.Cell)
		switch e.Reason {
		case ReasonOperandWait:
			c.OperandWait++
		case ReasonAckWait:
			c.AckWait++
		case ReasonUnitBusy:
			c.UnitBusy++
		}
	}
}

// Cycles returns the observed run length (last event cycle + 1), the
// denominator of the occupancy figures.
func (m *Metrics) Cycles() int64 { return m.lastCycle + 1 }

// Occupancy returns the endpoint's instruction-retirement occupancy: the
// fraction of cycles it retired an instruction (for FUs, initiated an
// operation). 1.0 is saturation.
func (m *Metrics) Occupancy(unit int) float64 {
	if m.Cycles() <= 0 || unit < 0 || unit >= len(m.Units) {
		return 0
	}
	busy := m.Units[unit].Firings
	if m.Units[unit].FUOps > busy {
		busy = m.Units[unit].FUOps
	}
	return float64(busy) / float64(m.Cycles())
}

// DeliveryOccupancy returns the endpoint's packet arrival rate in
// deliveries per cycle. The crossbar serializes network traffic to one
// delivery per endpoint per cycle, so 1.0 means the network port is the
// bottleneck; same-endpoint (local) packets bypass the network, so a
// hot-spotted endpoint can exceed 1.0 — unambiguous overload.
func (m *Metrics) DeliveryOccupancy(unit int) float64 {
	if m.Cycles() <= 0 || unit < 0 || unit >= len(m.Units) {
		return 0
	}
	return float64(m.Units[unit].Delivered) / float64(m.Cycles())
}

// MeanTransit returns the endpoint's mean delivered-packet transit time in
// cycles (0 if nothing was delivered).
func (m *Metrics) MeanTransit(unit int) float64 {
	if unit < 0 || unit >= len(m.Units) || m.Units[unit].Delivered == 0 {
		return 0
	}
	return float64(m.Units[unit].TransitSum) / float64(m.Units[unit].Delivered)
}

// Summary renders a compact human-readable digest: run length, packet
// counts, the busiest units, and the most-stalled cells.
func (m *Metrics) Summary(top int) string {
	var b strings.Builder
	if len(m.Phases) > 0 {
		fmt.Fprintf(&b, "compile phases (wall / cells / arcs):\n")
		for _, p := range m.Phases {
			fmt.Fprintf(&b, "  %-15s %10v  cells %5d -> %-5d arcs %5d -> %-5d\n",
				p.Name, p.Wall.Round(time.Microsecond),
				p.CellsBefore, p.CellsAfter, p.ArcsBefore, p.ArcsAfter)
		}
	}
	fmt.Fprintf(&b, "observed %d events over %d cycles\n", m.Events, m.Cycles())
	if total := m.Packets[PacketResult] + m.Packets[PacketAck] + m.Packets[PacketOp]; total > 0 {
		fmt.Fprintf(&b, "packets: %d result, %d ack, %d operation\n",
			m.Packets[PacketResult], m.Packets[PacketAck], m.Packets[PacketOp])
	}
	if len(m.Units) > 0 {
		fmt.Fprintf(&b, "units (occupancy / delivery occupancy / mean transit):\n")
		for u := range m.Units {
			if m.Units[u].Firings == 0 && m.Units[u].FUOps == 0 && m.Units[u].Delivered == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-6s %5.1f%%  %5.1f%%  %6.2f\n",
				m.meta.UnitName(u), 100*m.Occupancy(u), 100*m.DeliveryOccupancy(u), m.MeanTransit(u))
		}
	}
	type row struct {
		id    int
		stall int64
	}
	rows := make([]row, 0, len(m.Cells))
	for i := range m.Cells {
		if s := m.Cells[i].StallCycles(); s > 0 {
			rows = append(rows, row{i, s})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].stall != rows[j].stall {
			return rows[i].stall > rows[j].stall
		}
		return rows[i].id < rows[j].id
	})
	if top <= 0 || top > len(rows) {
		top = len(rows)
	}
	if top > 0 {
		fmt.Fprintf(&b, "most-stalled cells (operand-wait / ack-wait / unit-busy):\n")
		for _, r := range rows[:top] {
			c := &m.Cells[r.id]
			fmt.Fprintf(&b, "  %-24s II=%6.2f  %6d %6d %6d\n",
				m.meta.CellName(r.id), c.AchievedII(), c.OperandWait, c.AckWait, c.UnitBusy)
		}
	}
	return b.String()
}
