// Package trace is the pipeline observability layer of the reproduction:
// structured events for cell firings, token and acknowledge arrivals, packet
// hops, and stalls, emitted by both executable models (the firing-rule
// simulator in package exec and the packet-level machine in package machine)
// behind one Tracer interface.
//
// The paper's central quantitative claim — every instruction cell of a
// balanced pipe-structured graph fires once per two instruction times (§3) —
// makes per-cell rate observation the natural debugging tool: a cell whose
// achieved inter-firing interval exceeds the analytic prediction sits on an
// unbalanced reconvergent path or behind a saturated machine resource (PE
// instruction bandwidth, FU latency, network contention; §2, Fig 1). The
// sinks in this package (Ring, Metrics, Chrome) capture the evidence;
// Analyze issues the verdict.
//
// Tracing is strictly passive: a simulator given a nil Tracer takes only a
// nil-check per potential event, and an attached tracer never alters
// scheduling, results, or cycle counts (the zero-perturbation tests in the
// exec and machine packages pin this down).
package trace

// Kind classifies an Event.
type Kind uint8

const (
	// KindFiring records an instruction cell firing. Cell identifies the
	// cell; Unit is the hosting endpoint in the machine model (-1 in the
	// firing-rule model).
	KindFiring Kind = iota
	// KindToken records a result token arriving at an operand slot
	// (Cell/Port). The firing-rule model emits it at the producer's firing
	// cycle; the machine model folds arrivals into KindDeliver instead.
	KindToken
	// KindAck records an acknowledge reaching the producer cell (Cell),
	// freeing its destination arc. Machine-model acks arrive as
	// KindDeliver with PacketAck.
	KindAck
	// KindSend records a packet entering the routing network: Src/Dst are
	// endpoints, Packet is the traffic class, Cell the destination cell
	// (result and acknowledge packets) or the shipping cell (operation
	// packets).
	KindSend
	// KindDeliver records a packet leaving the network at Dst. Aux carries
	// the transit time in cycles (queueing included), which exposes
	// network contention directly.
	KindDeliver
	// KindFUStart records a function unit initiating an operation: Unit is
	// the FU endpoint, Cell the shipping cell, Aux the pipeline latency.
	KindFUStart
	// KindFUDone records the operation completing and its result packets
	// being emitted.
	KindFUDone
	// KindStall records a cell examined but unable to fire this cycle;
	// Reason says why. Emitted once per stalled cell per cycle.
	KindStall
)

func (k Kind) String() string {
	switch k {
	case KindFiring:
		return "firing"
	case KindToken:
		return "token"
	case KindAck:
		return "ack"
	case KindSend:
		return "send"
	case KindDeliver:
		return "deliver"
	case KindFUStart:
		return "fu-start"
	case KindFUDone:
		return "fu-done"
	case KindStall:
		return "stall"
	}
	return "event"
}

// PacketKind classifies routed traffic (§2): result packets to operand
// slots, acknowledge packets on the reverse paths, operation packets to the
// function units.
type PacketKind uint8

const (
	PacketResult PacketKind = iota
	PacketAck
	PacketOp

	// NumPacketKinds sizes per-kind accumulator arrays.
	NumPacketKinds = 3
)

func (p PacketKind) String() string {
	switch p {
	case PacketAck:
		return "ack"
	case PacketOp:
		return "operation"
	default:
		return "result"
	}
}

// Reason explains a stall (KindStall).
type Reason uint8

const (
	// ReasonNone means the cell was enabled (not a stall).
	ReasonNone Reason = iota
	// ReasonOperandWait: a required operand token has not arrived.
	ReasonOperandWait
	// ReasonAckWait: all operands are present but a destination arc is
	// still occupied (machine model: acknowledge packets outstanding).
	ReasonAckWait
	// ReasonUnitBusy: the cell was enabled but its hosting endpoint had
	// already retired its one instruction this cycle (machine model only —
	// PE instruction-bandwidth contention).
	ReasonUnitBusy
	// ReasonDone: the cell has exhausted its work (a drained source or
	// control generator). Not reported as a stall.
	ReasonDone
)

func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "enabled"
	case ReasonOperandWait:
		return "operand-wait"
	case ReasonAckWait:
		return "ack-wait"
	case ReasonUnitBusy:
		return "unit-busy"
	case ReasonDone:
		return "done"
	}
	return "reason"
}

// Event is one observation. Fields not meaningful for a Kind are zero
// (Cell/Unit/Src/Dst use -1 for "not applicable").
type Event struct {
	Cycle  int64
	Kind   Kind
	Cell   int32 // instruction cell (graph.NodeID), -1 if n/a
	Port   int32 // operand port, -1 if n/a
	Unit   int32 // endpoint (PE/FU/AM) in the machine model, -1 if n/a
	Src    int32 // packet source endpoint, -1 if n/a
	Dst    int32 // packet destination endpoint, -1 if n/a
	Packet PacketKind
	Reason Reason
	Aux    int64 // kind-specific: transit cycles (deliver), FU latency (fu-start)
}

// Meta names the structures a run observes, so sinks can label output
// without importing the simulators.
type Meta struct {
	// Cells holds one diagnostic name per instruction cell, indexed by
	// node ID of the simulated (FIFO-expanded) graph.
	Cells []string
	// Units names the machine endpoints ("PE0", "FU1", "AM0"); empty for
	// the firing-rule model, which has no machine resources.
	Units []string
	// CellUnit maps each cell to its hosting endpoint (machine model);
	// nil for the firing-rule model.
	CellUnit []int
}

// CellName returns the name of cell id, with a numeric fallback.
func (m Meta) CellName(id int) string {
	if id >= 0 && id < len(m.Cells) {
		return m.Cells[id]
	}
	if id < 0 {
		return "-"
	}
	return "cell" + itoa(id)
}

// UnitName returns the name of endpoint id, with a numeric fallback.
func (m Meta) UnitName(id int) string {
	if id >= 0 && id < len(m.Units) {
		return m.Units[id]
	}
	if id < 0 {
		return "-"
	}
	return "unit" + itoa(id)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	neg := i < 0
	if neg {
		i = -i
	}
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}

// Tracer receives the event stream of one simulation run. Implementations
// must not assume any call ordering beyond: Start once before the first
// Emit, events in nondecreasing Cycle order.
//
// Simulators hold a Tracer field and guard every emission with a nil check,
// so a nil Tracer is the documented "disabled" state and costs one branch.
type Tracer interface {
	// Start announces the run's metadata before any event.
	Start(Meta)
	// Emit records one event.
	Emit(Event)
}

// Multi fans events out to several tracers (e.g. Metrics plus a Chrome
// export in one run).
type Multi []Tracer

// Start forwards the metadata to every tracer.
func (m Multi) Start(meta Meta) {
	for _, t := range m {
		t.Start(meta)
	}
}

// Emit forwards the event to every tracer.
func (m Multi) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}

// Ring is an in-memory sink keeping the most recent events — the flight
// recorder used to inspect the cycles around a stall.
type Ring struct {
	meta  Meta
	buf   []Event
	next  int
	full  bool
	total int64
}

// DefaultRingCap sizes NewRing(0).
const DefaultRingCap = 4096

// NewRing returns a ring buffer holding the last cap events (cap <= 0 uses
// DefaultRingCap).
func NewRing(cap int) *Ring {
	if cap <= 0 {
		cap = DefaultRingCap
	}
	return &Ring{buf: make([]Event, 0, cap)}
}

// Start records the run metadata.
func (r *Ring) Start(m Meta) { r.meta = m }

// Meta returns the metadata announced by Start.
func (r *Ring) Meta() Meta { return r.meta }

// Emit appends the event, evicting the oldest once full.
func (r *Ring) Emit(e Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.full = true
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
}

// Total returns how many events were emitted over the run (including
// evicted ones).
func (r *Ring) Total() int64 { return r.total }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	if !r.full {
		out := make([]Event, len(r.buf))
		copy(out, r.buf)
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Format renders an event using the run's metadata, one line, for logs and
// the dftrace -events dump.
func (m Meta) Format(e Event) string {
	s := "c=" + itoa(int(e.Cycle)) + " " + e.Kind.String()
	switch e.Kind {
	case KindFiring:
		s += " " + m.CellName(int(e.Cell))
		if e.Unit >= 0 {
			s += " @" + m.UnitName(int(e.Unit))
		}
	case KindToken:
		s += " -> " + m.CellName(int(e.Cell)) + ".port" + itoa(int(e.Port))
	case KindAck:
		s += " -> " + m.CellName(int(e.Cell))
	case KindSend, KindDeliver:
		s += " " + e.Packet.String() + " " + m.UnitName(int(e.Src)) + "->" + m.UnitName(int(e.Dst))
		if e.Cell >= 0 {
			s += " cell=" + m.CellName(int(e.Cell))
		}
		if e.Kind == KindDeliver {
			s += " transit=" + itoa(int(e.Aux))
		}
	case KindFUStart, KindFUDone:
		s += " " + m.UnitName(int(e.Unit)) + " for " + m.CellName(int(e.Cell))
	case KindStall:
		s += " " + m.CellName(int(e.Cell)) + " (" + e.Reason.String() + ")"
	}
	return s
}
