package trace

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// HistBuckets is the number of log₂ buckets in a Histogram. Bucket 0 holds
// observations ≤ 1 cycle, bucket i (0 < i < HistBuckets-1) holds
// observations in (2^(i-1), 2^i], and the final bucket is the unbounded
// overflow. 2^(HistBuckets-2) = 4M cycles comfortably exceeds any interval a
// bounded simulation (default MaxCycles 10M) can produce between two
// observations of the same cell.
const HistBuckets = 24

// Histogram is a fixed-size log-bucketed distribution of int64 cycle
// counts: inter-firing intervals, packet transit times, FU service times.
// It is a value type — assignment deep-copies it — so the snapshotting
// layer can clone a whole Metrics by copying slices. The log-bucket scheme
// trades precision for O(1) memory per distribution: quantiles are exact to
// within a factor of 2, which is enough to tell a fill transient (a few
// long intervals) from a structural stall (every interval long).
type Histogram struct {
	// Count and Sum describe all observations, including overflow.
	Count int64
	Sum   int64
	// Buckets[i] counts observations in bucket i (see HistBuckets).
	Buckets [HistBuckets]int64
}

// histBucket returns the bucket index of observation v.
func histBucket(v int64) int {
	if v <= 1 {
		return 0
	}
	// v in (2^(b-1), 2^b] has bits.Len64(v-1) == b.
	b := bits.Len64(uint64(v - 1))
	if b > HistBuckets-1 {
		return HistBuckets - 1
	}
	return b
}

// BucketBound returns the inclusive upper bound of bucket i; the final
// bucket is unbounded and reports math.MaxInt64.
func BucketBound(i int) int64 {
	if i >= HistBuckets-1 {
		return math.MaxInt64
	}
	return 1 << uint(i)
}

// Observe records one observation. Negative values are clamped to zero
// (they cannot arise from cycle arithmetic but must not corrupt a bucket
// index if they ever did).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.Count++
	h.Sum += v
	h.Buckets[histBucket(v)]++
}

// Mean returns the exact mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by locating the bucket
// containing the rank and interpolating linearly within it — the same
// estimator Prometheus's histogram_quantile applies to the exported
// buckets, so live scrapes and in-process reports agree. Returns 0 when
// empty; an overflow-bucket hit reports the bucket's lower bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := 0.0
	for i := 0; i < HistBuckets; i++ {
		n := float64(h.Buckets[i])
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo := 0.0
			if i > 0 {
				lo = float64(BucketBound(i - 1))
			}
			if i == HistBuckets-1 {
				return lo
			}
			hi := float64(BucketBound(i))
			return lo + (hi-lo)*(rank-cum)/n
		}
		cum += n
	}
	return 0
}

// String renders the non-empty buckets compactly, for debugging dumps.
func (h *Histogram) String() string {
	if h.Count == 0 {
		return "empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.2f", h.Count, h.Mean())
	for i := 0; i < HistBuckets; i++ {
		if h.Buckets[i] == 0 {
			continue
		}
		if i == HistBuckets-1 {
			fmt.Fprintf(&b, " le=+Inf:%d", h.Buckets[i])
		} else {
			fmt.Fprintf(&b, " le=%d:%d", BucketBound(i), h.Buckets[i])
		}
	}
	return b.String()
}
