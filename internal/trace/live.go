package trace

import (
	"sync"
	"sync/atomic"
)

// Live is the concurrency-safe snapshotting layer over Metrics: the
// simulator goroutine Emits into it like any other sink, while reader
// goroutines (the telemetry HTTP server, a watchdog) call Snapshot at any
// time and receive a consistent deep copy.
//
// The sinks in this package are deliberately not goroutine-safe — a
// single-threaded simulator should not pay for locks it does not need.
// Live is the one guarded sink: anything shared across goroutines (a
// sink scraped while the run is in flight, or a sink that several
// simulator instances would otherwise share) must go through it. Like all
// tracing it is passive: it changes no scheduling, results, or cycle
// counts, only the wall-clock cost of each emission.
type Live struct {
	mu sync.Mutex
	m  *Metrics
}

// NewLive returns a guarded, snapshot-capable metrics sink.
func NewLive() *Live { return &Live{m: NewMetrics()} }

// Start forwards the run metadata to the inner Metrics.
func (l *Live) Start(meta Meta) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.m.Start(meta)
}

// Emit aggregates one event under the lock.
func (l *Live) Emit(e Event) {
	l.mu.Lock()
	l.m.Emit(e)
	l.mu.Unlock()
}

// RecordPhase forwards a compile-phase record (see Metrics.RecordPhase).
func (l *Live) RecordPhase(p PhaseStat) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.m.RecordPhase(p)
}

// Snapshot returns a consistent deep copy of the aggregates as of now. The
// caller owns the copy; the simulator keeps emitting into the original.
func (l *Live) Snapshot() *Metrics {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.m.Clone()
}

// Progress is the simulators' lock-free live progress counter: one atomic
// store per simulated cycle plus one add per sink arrival when attached,
// nothing when nil. Unlike the event stream it is readable mid-run without
// any lock, so a scrape can report cycle progress even when no tracer is
// attached at all.
type Progress struct {
	// Cycle is the most recently simulated cycle.
	Cycle atomic.Int64
	// Arrivals counts values received by sinks so far.
	Arrivals atomic.Int64

	// shards points at the per-shard counter blocks of a sharded run
	// (nil for sequential runs). Published atomically so a scrape racing
	// the engine's InitShards sees either nothing or the full set.
	shards atomic.Pointer[[]*ShardCounters]

	// lanes points at the per-lane counter blocks of a batched run (nil
	// for scalar runs). Published atomically like shards.
	lanes atomic.Pointer[[]*LaneCounters]
}

// ShardCounters is the lock-free live progress block one shard of the
// sharded engine updates as it runs; the telemetry exporter reads it
// mid-run the same way it reads Cycle/Arrivals.
type ShardCounters struct {
	// Cycles counts instruction times this shard has completed.
	Cycles atomic.Int64
	// Firings counts cell firings retired by this shard.
	Firings atomic.Int64
	// RingMsgs counts cross-shard notifications this shard has pushed.
	RingMsgs atomic.Int64
	// RingPeak is the highest inbound-ring occupancy observed so far.
	RingPeak atomic.Int64
	// BarrierWaitNs accumulates nanoseconds spent spinning at barriers.
	BarrierWaitNs atomic.Int64
}

// InitShards installs n fresh per-shard counter blocks and returns them;
// the sharded engines call it once at run start.
func (p *Progress) InitShards(n int) []*ShardCounters {
	s := make([]*ShardCounters, n)
	for i := range s {
		s[i] = &ShardCounters{}
	}
	p.shards.Store(&s)
	return s
}

// Shards returns the per-shard counter blocks, or nil when the run is
// sequential (or has not initialized sharding yet).
func (p *Progress) Shards() []*ShardCounters {
	if v := p.shards.Load(); v != nil {
		return *v
	}
	return nil
}

// LaneCounters is the lock-free live progress block one lane of a batched
// run updates as it advances; the telemetry exporter reads it mid-run the
// same way it reads Cycle/Arrivals. Lane progress skew — the spread
// between the fastest and slowest live lane — falls directly out of the
// per-lane Cycles values.
type LaneCounters struct {
	// Cycles is the most recent cycle this lane was still live at (its
	// quiescence cycle once Done is set).
	Cycles atomic.Int64
	// Arrivals counts values this lane's sinks have received so far.
	Arrivals atomic.Int64
	// Done is 1 once the lane has quiesced (or been canceled).
	Done atomic.Int64
}

// InitLanes installs n fresh per-lane counter blocks and returns them; the
// batched engines call it once at run start.
func (p *Progress) InitLanes(n int) []*LaneCounters {
	l := make([]*LaneCounters, n)
	for i := range l {
		l[i] = &LaneCounters{}
	}
	p.lanes.Store(&l)
	return l
}

// BatchLanes returns the per-lane counter blocks, or nil when the run is
// scalar (or has not initialized batching yet).
func (p *Progress) BatchLanes() []*LaneCounters {
	if v := p.lanes.Load(); v != nil {
		return *v
	}
	return nil
}
