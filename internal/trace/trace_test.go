package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Cycle: int64(i), Kind: KindFiring, Cell: int32(i)})
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := int64(6 + i); e.Cycle != want {
			t.Errorf("event %d: cycle %d, want %d (oldest-first)", i, e.Cycle, want)
		}
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 3; i++ {
		r.Emit(Event{Cycle: int64(i)})
	}
	evs := r.Events()
	if len(evs) != 3 || evs[0].Cycle != 0 || evs[2].Cycle != 2 {
		t.Fatalf("partial ring: got %v", evs)
	}
}

func TestMetricsAggregation(t *testing.T) {
	m := NewMetrics()
	m.Start(Meta{Cells: []string{"a", "b"}, Units: []string{"PE0"}})
	// Cell 0 fires at cycles 0, 2, 4 — achieved II = 2.
	for _, cy := range []int64{0, 2, 4} {
		m.Emit(Event{Cycle: cy, Kind: KindFiring, Cell: 0, Unit: 0, Port: -1, Src: -1, Dst: -1})
	}
	m.Emit(Event{Cycle: 1, Kind: KindStall, Cell: 1, Reason: ReasonOperandWait, Unit: -1, Port: -1, Src: -1, Dst: -1})
	m.Emit(Event{Cycle: 3, Kind: KindStall, Cell: 1, Reason: ReasonAckWait, Unit: -1, Port: -1, Src: -1, Dst: -1})
	m.Emit(Event{Cycle: 3, Kind: KindDeliver, Cell: 1, Packet: PacketResult, Src: 0, Dst: 0, Unit: -1, Port: 0, Aux: 2})

	c0 := m.Cells[0]
	if c0.Firings != 3 || c0.First != 0 || c0.Last != 4 {
		t.Fatalf("cell 0 = %+v", c0)
	}
	if got := c0.AchievedII(); got != 2 {
		t.Fatalf("AchievedII = %v, want 2", got)
	}
	c1 := m.Cells[1]
	if c1.OperandWait != 1 || c1.AckWait != 1 || c1.Tokens != 1 {
		t.Fatalf("cell 1 = %+v", c1)
	}
	if m.Cycles() != 5 {
		t.Fatalf("Cycles = %d, want 5", m.Cycles())
	}
	// PE0 retired 3 instructions over 5 cycles and took 1 delivery.
	if got := m.Occupancy(0); got != 3.0/5 {
		t.Fatalf("Occupancy = %v, want 0.6", got)
	}
	if got := m.DeliveryOccupancy(0); got != 1.0/5 {
		t.Fatalf("DeliveryOccupancy = %v, want 0.2", got)
	}
	if got := m.MeanTransit(0); got != 2 {
		t.Fatalf("MeanTransit = %v, want 2", got)
	}
}

func TestChromeValidJSON(t *testing.T) {
	var buf bytes.Buffer
	c := NewChrome(&buf)
	c.Stalls = true
	c.Start(Meta{Cells: []string{"add", "mul"}, Units: []string{"PE0", "PE1"}, CellUnit: []int{0, 1}})
	c.Emit(Event{Cycle: 3, Kind: KindFiring, Cell: 0, Unit: 0, Port: -1, Src: -1, Dst: -1})
	c.Emit(Event{Cycle: 4, Kind: KindSend, Cell: 1, Packet: PacketResult, Src: 0, Dst: 1, Unit: -1, Port: -1})
	c.Emit(Event{Cycle: 5, Kind: KindDeliver, Cell: 1, Packet: PacketResult, Src: 0, Dst: 1, Unit: -1, Port: -1, Aux: 1})
	c.Emit(Event{Cycle: 5, Kind: KindStall, Cell: 1, Reason: ReasonOperandWait, Unit: -1, Port: -1, Src: -1, Dst: -1})
	c.Emit(Event{Cycle: 6, Kind: KindFUStart, Cell: 1, Unit: 1, Aux: 3, Port: -1, Src: -1, Dst: -1})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if len(evs) == 0 {
		t.Fatal("no events exported")
	}
	for i, e := range evs {
		for _, field := range []string{"ph", "ts", "pid", "tid"} {
			if _, ok := e[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, e)
			}
		}
	}
	// The firing must be a complete event on cell 0's thread in PE0's
	// process.
	var sawFiring bool
	for _, e := range evs {
		if e["ph"] == "X" && e["cat"] == "firing" {
			sawFiring = true
			if e["ts"].(float64) != 3 || e["pid"].(float64) != 0 || e["tid"].(float64) != 0 {
				t.Fatalf("firing event mislabeled: %v", e)
			}
		}
	}
	if !sawFiring {
		t.Fatal("no ph=X firing event in export")
	}

	// Events after Close must be dropped, not corrupt the file.
	pre := buf.Len()
	c.Emit(Event{Cycle: 9, Kind: KindFiring, Cell: 0})
	if buf.Len() != pre {
		t.Fatal("Emit after Close wrote data")
	}
}

func TestMultiFanOut(t *testing.T) {
	m := NewMetrics()
	r := NewRing(2)
	multi := Multi{m, r}
	multi.Start(Meta{Cells: []string{"a"}})
	multi.Emit(Event{Cycle: 0, Kind: KindFiring, Cell: 0, Unit: -1})
	multi.Emit(Event{Cycle: 2, Kind: KindFiring, Cell: 0, Unit: -1})
	if m.Cells[0].Firings != 2 {
		t.Fatalf("metrics missed events: %+v", m.Cells[0])
	}
	if r.Total() != 2 || len(r.Events()) != 2 {
		t.Fatalf("ring missed events: total=%d", r.Total())
	}
	if r.Meta().CellName(0) != "a" {
		t.Fatalf("ring meta not forwarded")
	}
}

func TestFormat(t *testing.T) {
	meta := Meta{Cells: []string{"add"}, Units: []string{"PE0", "PE1"}}
	e := Event{Cycle: 7, Kind: KindDeliver, Cell: 0, Packet: PacketAck, Src: 1, Dst: 0, Aux: 2}
	got := meta.Format(e)
	want := "c=7 deliver ack PE1->PE0 cell=add transit=2"
	if got != want {
		t.Fatalf("Format = %q, want %q", got, want)
	}
}
