// Package analyze compares a traced run's achieved per-cell firing rates
// against the analytic maximum-cycle-ratio prediction and names the
// bottleneck: the unbalanced critical cycle (graph structure) or a
// saturated machine resource.
package analyze

import (
	"fmt"
	"sort"
	"strings"

	"staticpipe/internal/graph"
	"staticpipe/internal/mcm"
	"staticpipe/internal/trace"
)

// CellRate is one cell's achieved-versus-predicted rate line.
type CellRate struct {
	ID       graph.NodeID
	Name     string
	Firings  int64
	Achieved float64 // mean inter-firing interval, cycles
	// P50 and P99 are inter-firing interval quantiles from the cell's
	// log-bucketed histogram. A p99 well above the mean reveals a pipeline
	// that mostly hits rate but takes periodic long stalls — invisible in
	// the mean alone.
	P50 float64
	P99 float64
	// Shortfall is Achieved minus the graph's predicted initiation
	// interval; a cell more than about one cycle short of the prediction
	// is held back by a machine resource rather than graph structure.
	Shortfall   float64
	OperandWait int64
	AckWait     int64
	UnitBusy    int64
	// Sparse marks a cell that fired far less often than the pipeline's
	// steady-state rate — a data-dependent conditional arm taken on few
	// iterations. Its interval is not a steady-state II, so it is listed
	// last and never drives the verdict.
	Sparse bool
}

// UnitRate is one machine endpoint's occupancy line.
type UnitRate struct {
	ID        int
	Name      string
	Occupancy float64 // instruction retirements (or FU initiations) per cycle
	Delivery  float64 // network-port deliveries per cycle
	Transit   float64 // mean delivered-packet transit, cycles
	// TransitP99 is the 99th-percentile delivered-packet transit time; a
	// tail far above the mean marks intermittent network contention.
	TransitP99 float64
	// ServiceP50 and ServiceP99 are function-unit service-time quantiles
	// (queue wait + pipeline latency); zero when the endpoint is not an FU.
	ServiceP50 float64
	ServiceP99 float64
}

// Analysis is the bottleneck report: the analytic rate bound, the critical
// cycle responsible for it, every cell's achieved rate, and the saturation
// state of the machine resources.
type Analysis struct {
	// Predicted is the maximum-cycle-ratio rate bound of the graph's
	// timing constraints (package mcm); 2 cycles/firing is the paper's
	// architectural maximum for a balanced graph.
	Predicted mcm.Result
	// Critical lists the cells of one cycle attaining the bound — for an
	// unbalanced reconvergent pair of paths this walks the long path
	// forward and returns along the short path's acknowledge edges, so it
	// names the cells responsible.
	Critical      []graph.NodeID
	CriticalNames []string
	// Cells holds achieved rates, worst shortfall first.
	Cells []CellRate
	// Units holds endpoint occupancies (machine runs only).
	Units []UnitRate
	// Remarks is the verdict: structural bottleneck (critical cycle),
	// resource bottleneck (saturated unit), or fully pipelined.
	Remarks []string
	// Severity grades the resource-contention component of the verdict
	// (structural bottlenecks are a property of the graph, not of the
	// machine, and do not contribute): SeverityResourceBound when a cell
	// falls more than a cycle short of the predicted rate, SeveritySaturated
	// when resources run at the saturation threshold but rate is held, and
	// SeverityNone when fully pipelined.
	Severity int
}

// Contention severity grades, worst first.
const (
	SeverityResourceBound = 2 // a cell misses the predicted rate (dominant stall named)
	SeveritySaturated     = 1 // saturated units, rate still held
	SeverityNone          = 0 // fully pipelined
)

// SeverityWord renders a severity grade for reports.
func SeverityWord(s int) string {
	switch s {
	case SeverityResourceBound:
		return "resource-bound"
	case SeveritySaturated:
		return "saturated"
	default:
		return "clean"
	}
}

// SaturationThreshold is the occupancy above which Analyze calls a machine
// resource saturated.
const SaturationThreshold = 0.95

// Analyze compares each cell's achieved inter-firing interval against the
// analytic prediction for g and names what limits the pipeline. The graph
// must be the FIFO-expanded graph the metrics were recorded against —
// exec.Result.Graph or machine.Result.Graph.
func Analyze(g *graph.Graph, m *trace.Metrics) (*Analysis, error) {
	pred, crit, err := mcm.Critical(g)
	if err != nil {
		return nil, fmt.Errorf("analyze: rate prediction failed: %w", err)
	}
	a := &Analysis{Predicted: pred, Critical: crit}
	for _, id := range crit {
		a.CriticalNames = append(a.CriticalNames, g.Node(id).Name())
	}
	target := pred.Float()
	var maxFirings int64
	for i := range m.Cells {
		if m.Cells[i].Firings > maxFirings {
			maxFirings = m.Cells[i].Firings
		}
	}
	for _, n := range g.Nodes() {
		if int(n.ID) >= len(m.Cells) {
			continue
		}
		c := &m.Cells[n.ID]
		if c.Firings < 2 {
			continue
		}
		a.Cells = append(a.Cells, CellRate{
			ID: n.ID, Name: n.Name(), Firings: c.Firings,
			Achieved: c.AchievedII(), Shortfall: c.AchievedII() - target,
			P50: c.Interval.Quantile(0.50), P99: c.Interval.Quantile(0.99),
			OperandWait: c.OperandWait, AckWait: c.AckWait, UnitBusy: c.UnitBusy,
			Sparse: c.Firings*4 < maxFirings,
		})
	}
	sort.Slice(a.Cells, func(i, j int) bool {
		if a.Cells[i].Sparse != a.Cells[j].Sparse {
			return !a.Cells[i].Sparse
		}
		if a.Cells[i].Shortfall != a.Cells[j].Shortfall {
			return a.Cells[i].Shortfall > a.Cells[j].Shortfall
		}
		return a.Cells[i].ID < a.Cells[j].ID
	})
	for u := range m.Units {
		um := &m.Units[u]
		if um.Firings == 0 && um.FUOps == 0 && um.Delivered == 0 {
			continue
		}
		a.Units = append(a.Units, UnitRate{
			ID: u, Name: m.Meta().UnitName(u),
			Occupancy: m.Occupancy(u), Delivery: m.DeliveryOccupancy(u), Transit: m.MeanTransit(u),
			TransitP99: um.Transit.Quantile(0.99),
			ServiceP50: um.Service.Quantile(0.50), ServiceP99: um.Service.Quantile(0.99),
		})
	}

	// Verdict.
	const maxRate = 2.0 // §3: one firing per two instruction times
	if pred.HasCycle && target > maxRate+1e-9 {
		a.Remarks = append(a.Remarks, fmt.Sprintf(
			"structural bottleneck: predicted %s exceeds the architectural maximum %.0f; critical cycle: %s",
			pred, maxRate, strings.Join(a.CriticalNames, " -> ")))
	}
	var saturated []string
	for _, u := range a.Units {
		switch {
		case u.Occupancy >= SaturationThreshold:
			saturated = append(saturated, fmt.Sprintf("%s instruction bandwidth (%.0f%% busy)", u.Name, 100*u.Occupancy))
		case u.Delivery >= SaturationThreshold:
			saturated = append(saturated, fmt.Sprintf("%s delivery port (%.0f deliveries per 100 cycles)", u.Name, 100*u.Delivery))
		}
	}
	if len(a.Cells) > 0 && !a.Cells[0].Sparse && a.Cells[0].Shortfall > 1.0 {
		worst := a.Cells[0]
		dominant := "operand-wait"
		if worst.AckWait > worst.OperandWait && worst.AckWait >= worst.UnitBusy {
			dominant = "ack-wait"
		} else if worst.UnitBusy > worst.OperandWait && worst.UnitBusy > worst.AckWait {
			dominant = "unit-busy"
		}
		r := fmt.Sprintf("resource bottleneck: %s achieves II=%.2f against predicted %.2f (dominant stall: %s)",
			worst.Name, worst.Achieved, target, dominant)
		if len(saturated) > 0 {
			r += "; saturated: " + strings.Join(saturated, ", ")
		}
		a.Remarks = append(a.Remarks, r)
		a.Severity = SeverityResourceBound
	} else if len(saturated) > 0 {
		a.Remarks = append(a.Remarks, "saturated resources: "+strings.Join(saturated, ", "))
		a.Severity = SeveritySaturated
	}
	if len(a.Remarks) == 0 {
		a.Remarks = append(a.Remarks,
			fmt.Sprintf("fully pipelined: every cell within 1 cycle of the predicted interval (%s)", pred))
	}
	return a, nil
}

// Render formats the report, listing at most top cells (0 = all).
func (a *Analysis) Render(top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "predicted %s\n", a.Predicted)
	if len(a.CriticalNames) > 0 {
		fmt.Fprintf(&b, "critical cycle (%d cells): %s\n", len(a.CriticalNames), strings.Join(a.CriticalNames, " -> "))
	}
	if len(a.Units) > 0 {
		fmt.Fprintf(&b, "%-8s %9s %9s %9s %9s %9s %9s\n",
			"unit", "busy", "deliver", "transit", "tr-p99", "svc-p50", "svc-p99")
		for _, u := range a.Units {
			fmt.Fprintf(&b, "%-8s %8.1f%% %8.1f%% %9.2f %9.2f %9.2f %9.2f\n",
				u.Name, 100*u.Occupancy, 100*u.Delivery, u.Transit, u.TransitP99, u.ServiceP50, u.ServiceP99)
		}
	}
	n := len(a.Cells)
	if top > 0 && top < n {
		n = top
	}
	if n > 0 {
		fmt.Fprintf(&b, "%-26s %8s %9s %7s %7s %10s %8s %8s %8s\n",
			"cell", "firings", "II", "p50", "p99", "shortfall", "op-wait", "ack-wait", "busy")
		for _, c := range a.Cells[:n] {
			mark := ""
			if c.Sparse {
				mark = " (sparse arm)"
			}
			fmt.Fprintf(&b, "%-26s %8d %9.3f %7.1f %7.1f %10.3f %8d %8d %8d%s\n",
				c.Name, c.Firings, c.Achieved, c.P50, c.P99, c.Shortfall, c.OperandWait, c.AckWait, c.UnitBusy, mark)
		}
		if n < len(a.Cells) {
			fmt.Fprintf(&b, "  ... %d more cells\n", len(a.Cells)-n)
		}
	}
	for _, r := range a.Remarks {
		fmt.Fprintf(&b, "verdict: %s\n", r)
	}
	return b.String()
}

// RenderDelta formats a before/after comparison of two analyses of the same
// program on the same machine shape — dftrace's re-placement report. Units
// are matched by name; the closing line grades the contention change by
// severity, breaking severity ties on the worst delivery occupancy (the
// unambiguous overload measure: local packets bypass the network, so a
// hot-spotted endpoint exceeds one delivery per cycle).
func RenderDelta(before, after *Analysis) string {
	var b strings.Builder
	if len(before.Units) > 0 || len(after.Units) > 0 {
		byName := map[string]UnitRate{}
		for _, u := range before.Units {
			byName[u.Name] = u
		}
		fmt.Fprintf(&b, "%-8s %17s %19s %17s\n", "unit", "busy", "deliver", "tr-p99")
		for _, u := range after.Units {
			prev := byName[u.Name]
			fmt.Fprintf(&b, "%-8s %7.1f%% > %6.1f%% %8.1f%% > %7.1f%% %7.2f > %7.2f\n",
				u.Name, 100*prev.Occupancy, 100*u.Occupancy,
				100*prev.Delivery, 100*u.Delivery,
				prev.TransitP99, u.TransitP99)
		}
	}
	for _, r := range before.Remarks {
		fmt.Fprintf(&b, "verdict before: %s\n", r)
	}
	for _, r := range after.Remarks {
		fmt.Fprintf(&b, "verdict after:  %s\n", r)
	}
	db, da := before.worstDelivery(), after.worstDelivery()
	word := "unchanged"
	switch {
	case after.Severity < before.Severity, after.Severity == before.Severity && da < db-1e-9:
		word = "improved"
	case after.Severity > before.Severity, after.Severity == before.Severity && da > db+1e-9:
		word = "worsened"
	}
	fmt.Fprintf(&b, "contention: %s (severity %s > %s; worst delivery %.2f > %.2f per cycle)\n",
		word, SeverityWord(before.Severity), SeverityWord(after.Severity), db, da)
	return b.String()
}

// worstDelivery returns the highest per-unit delivery occupancy.
func (a *Analysis) worstDelivery() float64 {
	worst := 0.0
	for _, u := range a.Units {
		if u.Delivery > worst {
			worst = u.Delivery
		}
	}
	return worst
}
