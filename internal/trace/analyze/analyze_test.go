package analyze_test

import (
	"math"
	"strings"
	"testing"

	"staticpipe/internal/exec"
	"staticpipe/internal/graph"
	"staticpipe/internal/trace"
	"staticpipe/internal/trace/analyze"
	"staticpipe/internal/value"
)

// traced runs g under a metrics sink and analyzes the result.
func traced(t *testing.T, g *graph.Graph) (*analyze.Analysis, *trace.Metrics) {
	t.Helper()
	m := trace.NewMetrics()
	res, err := exec.Run(g, exec.Options{Tracer: m})
	if err != nil {
		t.Fatal(err)
	}
	a, err := analyze.Analyze(res.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	return a, m
}

func ramp(n int) []value.Value {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	return value.Reals(vals)
}

// A balanced linear pipeline runs at the architectural maximum: every cell
// achieves an inter-firing interval within one cycle of the predicted II=2.
func TestAnalyzeBalancedPipeline(t *testing.T) {
	g := graph.New()
	prev := g.AddSource("in", ramp(64))
	for s := 0; s < 5; s++ {
		id := g.Add(graph.OpID, "")
		g.Connect(prev, id, 0)
		prev = id
	}
	g.Connect(prev, g.AddSink("out"), 0)

	a, _ := traced(t, g)
	if got := a.Predicted.Float(); got != 2 {
		t.Fatalf("predicted II = %v, want 2", got)
	}
	for _, c := range a.Cells {
		if math.Abs(c.Achieved-2) > 1 {
			t.Errorf("cell %s achieved II=%.3f, want within 1 of 2", c.Name, c.Achieved)
		}
	}
	if len(a.Remarks) != 1 || !strings.Contains(a.Remarks[0], "fully pipelined") {
		t.Fatalf("verdict = %q, want fully pipelined", a.Remarks)
	}
}

// An unbalanced reconvergent pair of paths — two extra stages on one arm of
// an ADD — lowers the rate, and the analyzer must name cells on the long
// path as the critical cycle.
func TestAnalyzeUnbalancedNamesOffendingPath(t *testing.T) {
	g := graph.New()
	src := g.AddSource("in", ramp(64))
	id1 := g.Add(graph.OpID, "long1")
	id2 := g.Add(graph.OpID, "long2")
	add := g.Add(graph.OpAdd, "")
	g.Connect(src, id1, 0)
	g.Connect(id1, id2, 0)
	g.Connect(id2, add, 0)
	g.Connect(src, add, 1)
	g.Connect(add, g.AddSink("out"), 0)

	a, _ := traced(t, g)
	if got := a.Predicted.Float(); got <= 2 {
		t.Fatalf("predicted II = %v, want > 2 for the unbalanced graph", got)
	}
	if len(a.Critical) == 0 {
		t.Fatal("no critical cycle reported")
	}
	names := strings.Join(a.CriticalNames, " ")
	if !strings.Contains(names, "long1") && !strings.Contains(names, "long2") {
		t.Fatalf("critical cycle %q names no cell on the long path", names)
	}
	var found bool
	for _, r := range a.Remarks {
		if strings.Contains(r, "structural bottleneck") {
			found = true
		}
	}
	if !found {
		t.Fatalf("verdict %q does not call out the structural bottleneck", a.Remarks)
	}
	// The achieved rate must track the (elevated) prediction, not the
	// architectural maximum.
	for _, c := range a.Cells {
		if c.Sparse {
			continue
		}
		if math.Abs(c.Achieved-a.Predicted.Float()) > 1 {
			t.Errorf("cell %s achieved II=%.3f, predicted %.3f (want within 1)",
				c.Name, c.Achieved, a.Predicted.Float())
		}
	}
}

// Render produces the rate table and verdict without panicking on either
// shape of analysis.
func TestRender(t *testing.T) {
	g := graph.New()
	prev := g.AddSource("in", ramp(16))
	id := g.Add(graph.OpID, "")
	g.Connect(prev, id, 0)
	g.Connect(id, g.AddSink("out"), 0)
	a, _ := traced(t, g)
	out := a.Render(2)
	for _, want := range []string{"predicted", "verdict:", "cell"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render output missing %q:\n%s", want, out)
		}
	}
}
