package trace

import (
	"math"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4}, {16, 4},
		{17, 5},
		{1 << 22, 22},
		{1<<22 + 1, 23},
		{math.MaxInt64, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.bucket {
			t.Errorf("histBucket(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	// Every bucketed value must be <= its bucket's upper bound and > the
	// previous bound.
	for v := int64(0); v < 4096; v++ {
		b := histBucket(v)
		if v > BucketBound(b) {
			t.Fatalf("value %d above its bucket %d bound %d", v, b, BucketBound(b))
		}
		if b > 0 && v <= BucketBound(b-1) {
			t.Fatalf("value %d belongs in bucket %d or lower, got %d", v, b-1, b)
		}
	}
}

func TestHistogramCountSumMean(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	vals := []int64{1, 2, 2, 4, 8, 100}
	var sum int64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if h.Count != int64(len(vals)) || h.Sum != sum {
		t.Fatalf("count/sum = %d/%d, want %d/%d", h.Count, h.Sum, len(vals), sum)
	}
	if got, want := h.Mean(), float64(sum)/float64(len(vals)); math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 1000 observations of exactly 2 cycles: every quantile is in bucket
	// le=2, so the estimate must land in (1, 2].
	for i := 0; i < 1000; i++ {
		h.Observe(2)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got <= 1 || got > 2 {
			t.Errorf("Quantile(%v) = %v, want in (1, 2]", q, got)
		}
	}
	// A bimodal distribution: p50 stays in the low mode, p99 reaches the
	// high mode — exactly the fill-transient-vs-stall distinction the
	// histograms exist for.
	var b Histogram
	for i := 0; i < 98; i++ {
		b.Observe(2)
	}
	b.Observe(1000)
	b.Observe(1000)
	if p50 := b.Quantile(0.5); p50 > 2 {
		t.Errorf("bimodal p50 = %v, want <= 2", p50)
	}
	if p99 := b.Quantile(0.995); p99 < 512 {
		t.Errorf("bimodal p99.5 = %v, want >= 512 (high mode)", p99)
	}
	// Quantiles are monotone in q.
	prev := 0.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		cur := b.Quantile(q)
		if cur < prev {
			t.Fatalf("Quantile not monotone: q=%v gives %v after %v", q, cur, prev)
		}
		prev = cur
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxInt64 / 2)
	if h.Buckets[HistBuckets-1] != 1 {
		t.Fatalf("overflow observation not in final bucket: %v", h.Buckets)
	}
	if got := h.Quantile(0.99); got != float64(BucketBound(HistBuckets-2)) {
		t.Fatalf("overflow quantile = %v, want the final bucket's lower bound %v",
			got, float64(BucketBound(HistBuckets-2)))
	}
	if h.String() == "empty" {
		t.Fatal("non-empty histogram renders as empty")
	}
}

// TestHistogramQuantileInterpolation pins the estimator to its formula:
// within the bucket containing the rank, the estimate is
// lo + (hi-lo)*(rank-cum)/n with rank = q*Count. These exact values are the
// contract shared with Prometheus's histogram_quantile over the exported
// buckets; any change to the interpolation shows up here first.
func TestHistogramQuantileInterpolation(t *testing.T) {
	// Single populated bucket: 4 observations of 8, all in bucket 3 with
	// bounds (4, 8]. rank = 4q, cum = 0, n = 4 → estimate 4 + 4*(4q/4).
	var h Histogram
	for i := 0; i < 4; i++ {
		h.Observe(8)
	}
	for _, c := range []struct{ q, want float64 }{
		{0, 4}, {0.25, 5}, {0.5, 6}, {0.75, 7}, {1, 8},
	} {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("single-bucket Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Two buckets: 2 observations in bucket 0 (bounds [0, 1]), 2 in bucket 2
	// (bounds (2, 4]). q=0.75 → rank 3, lands in the second populated bucket
	// with cum=2, n=2: 2 + 2*(3-2)/2 = 3.
	var b Histogram
	b.Observe(1)
	b.Observe(1)
	b.Observe(4)
	b.Observe(4)
	if got := b.Quantile(0.75); math.Abs(got-3) > 1e-12 {
		t.Errorf("two-bucket Quantile(0.75) = %v, want 3", got)
	}
	// q=0.5 → rank 2, satisfied exactly at the end of bucket 0: 0 + 1*(2-0)/2 = 1.
	if got := b.Quantile(0.5); math.Abs(got-1) > 1e-12 {
		t.Errorf("two-bucket Quantile(0.5) = %v, want 1", got)
	}
}

// TestHistogramQuantileClamping covers the argument and observation edges:
// out-of-range q clamps to [0, 1], and negative observations clamp to zero
// (bucket 0) rather than corrupting a bucket index.
func TestHistogramQuantileClamping(t *testing.T) {
	var h Histogram
	h.Observe(-100)
	h.Observe(-1)
	if h.Buckets[0] != 2 {
		t.Fatalf("negative observations not clamped into bucket 0: %v", h.Buckets)
	}
	if h.Sum != 0 {
		t.Fatalf("negative observations leaked into Sum: %d", h.Sum)
	}
	if got := h.Quantile(-0.5); got != h.Quantile(0) {
		t.Errorf("Quantile(-0.5) = %v, want the q=0 value %v", got, h.Quantile(0))
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Errorf("Quantile(2) = %v, want the q=1 value %v", got, h.Quantile(1))
	}
	// Bucket 0's interpolation runs over [0, 1]: with every observation
	// there, q=1 reports at most the bucket bound.
	if got := h.Quantile(1); got < 0 || got > 1 {
		t.Errorf("all-zero Quantile(1) = %v, want in [0, 1]", got)
	}
}

// TestHistogramBoundaryValues checks observations sitting exactly on bucket
// bounds: 2^k goes in the bucket whose inclusive upper bound it is, and
// 2^k+1 starts the next one — so the quantile of a boundary-valued
// distribution never exceeds the value itself.
func TestHistogramBoundaryValues(t *testing.T) {
	for k := uint(1); k < 12; k++ {
		v := int64(1) << k
		var h Histogram
		h.Observe(v)
		if got := histBucket(v); BucketBound(got) != v {
			t.Errorf("histBucket(%d) = %d with bound %d, want the bucket bounded by the value",
				v, got, BucketBound(got))
		}
		if got := h.Quantile(1); got > float64(v) {
			t.Errorf("Quantile(1) of {%d} = %v, exceeds the observation", v, got)
		}
		if got := h.Quantile(1); got <= float64(v)/2 {
			t.Errorf("Quantile(1) of {%d} = %v, at or below the bucket's lower bound", v, got)
		}
	}
}
