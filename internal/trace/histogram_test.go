package trace

import (
	"math"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4}, {16, 4},
		{17, 5},
		{1 << 22, 22},
		{1<<22 + 1, 23},
		{math.MaxInt64, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.bucket {
			t.Errorf("histBucket(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	// Every bucketed value must be <= its bucket's upper bound and > the
	// previous bound.
	for v := int64(0); v < 4096; v++ {
		b := histBucket(v)
		if v > BucketBound(b) {
			t.Fatalf("value %d above its bucket %d bound %d", v, b, BucketBound(b))
		}
		if b > 0 && v <= BucketBound(b-1) {
			t.Fatalf("value %d belongs in bucket %d or lower, got %d", v, b-1, b)
		}
	}
}

func TestHistogramCountSumMean(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	vals := []int64{1, 2, 2, 4, 8, 100}
	var sum int64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if h.Count != int64(len(vals)) || h.Sum != sum {
		t.Fatalf("count/sum = %d/%d, want %d/%d", h.Count, h.Sum, len(vals), sum)
	}
	if got, want := h.Mean(), float64(sum)/float64(len(vals)); math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 1000 observations of exactly 2 cycles: every quantile is in bucket
	// le=2, so the estimate must land in (1, 2].
	for i := 0; i < 1000; i++ {
		h.Observe(2)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got <= 1 || got > 2 {
			t.Errorf("Quantile(%v) = %v, want in (1, 2]", q, got)
		}
	}
	// A bimodal distribution: p50 stays in the low mode, p99 reaches the
	// high mode — exactly the fill-transient-vs-stall distinction the
	// histograms exist for.
	var b Histogram
	for i := 0; i < 98; i++ {
		b.Observe(2)
	}
	b.Observe(1000)
	b.Observe(1000)
	if p50 := b.Quantile(0.5); p50 > 2 {
		t.Errorf("bimodal p50 = %v, want <= 2", p50)
	}
	if p99 := b.Quantile(0.995); p99 < 512 {
		t.Errorf("bimodal p99.5 = %v, want >= 512 (high mode)", p99)
	}
	// Quantiles are monotone in q.
	prev := 0.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		cur := b.Quantile(q)
		if cur < prev {
			t.Fatalf("Quantile not monotone: q=%v gives %v after %v", q, cur, prev)
		}
		prev = cur
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxInt64 / 2)
	if h.Buckets[HistBuckets-1] != 1 {
		t.Fatalf("overflow observation not in final bucket: %v", h.Buckets)
	}
	if got := h.Quantile(0.99); got != float64(BucketBound(HistBuckets-2)) {
		t.Fatalf("overflow quantile = %v, want the final bucket's lower bound %v",
			got, float64(BucketBound(HistBuckets-2)))
	}
	if h.String() == "empty" {
		t.Fatal("non-empty histogram renders as empty")
	}
}
