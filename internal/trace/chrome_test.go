package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

// chromeMeta is a two-endpoint, three-cell machine-shaped Meta: cells 0 and
// 1 live on endpoint 0, cell 2 on endpoint 1.
func chromeMeta() Meta {
	return Meta{
		Cells:    []string{"mul", "add", "fifo"},
		Units:    []string{"PE0", "FU0"},
		CellUnit: []int{0, 0, 1},
	}
}

// allKindEvents is one representative event per Kind, in cycle order.
func allKindEvents() []Event {
	return []Event{
		{Cycle: 1, Kind: KindFiring, Cell: 0, Unit: 0, Src: -1, Dst: -1},
		{Cycle: 1, Kind: KindStall, Cell: 1, Unit: 0, Src: -1, Dst: -1, Reason: ReasonOperandWait},
		{Cycle: 2, Kind: KindToken, Cell: 1, Port: 1, Unit: -1, Src: -1, Dst: -1},
		{Cycle: 2, Kind: KindAck, Cell: 0, Unit: -1, Src: -1, Dst: -1},
		{Cycle: 3, Kind: KindSend, Cell: 2, Unit: -1, Src: 0, Dst: 1, Packet: PacketResult},
		{Cycle: 4, Kind: KindDeliver, Cell: 2, Unit: 1, Src: 0, Dst: 1, Packet: PacketOp, Aux: 2},
		{Cycle: 5, Kind: KindFUStart, Cell: 2, Unit: 1, Src: -1, Dst: -1, Aux: 4},
		{Cycle: 9, Kind: KindFUDone, Cell: 2, Unit: 1, Src: -1, Dst: -1, Aux: 4},
	}
}

// chromeEvent is the decoded shape of one trace-event JSON object.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// export runs a full Start/Emit/Close cycle and decodes the output, failing
// the test if the export is not valid JSON.
func export(t *testing.T, configure func(*Chrome), events []Event) []chromeEvent {
	t.Helper()
	var sb strings.Builder
	c := NewChrome(&sb)
	if configure != nil {
		configure(c)
	}
	c.Start(chromeMeta())
	for _, e := range events {
		c.Emit(e)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	var out []chromeEvent
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, sb.String())
	}
	return out
}

func TestChromeValidJSONAllKinds(t *testing.T) {
	out := export(t, func(c *Chrome) { c.Stalls = true }, allKindEvents())

	// Metadata: one process_name per endpoint, one thread_name per cell,
	// with tid = cell id and pid = the cell's hosting endpoint.
	procs := map[int]string{}
	threads := map[int]int{}
	rest := 0
	for _, e := range out {
		switch e.Name {
		case "process_name":
			procs[e.Pid] = e.Args["name"].(string)
		case "thread_name":
			threads[e.Tid] = e.Pid
		default:
			rest++
		}
	}
	if procs[0] != "PE0" || procs[1] != "FU0" {
		t.Errorf("process names = %v", procs)
	}
	if threads[0] != 0 || threads[1] != 0 || threads[2] != 1 {
		t.Errorf("thread pid mapping = %v, want cell->CellUnit", threads)
	}
	// All 8 kinds exported (Stalls enabled): one non-meta record each.
	if rest != 8 {
		t.Errorf("exported %d events, want 8 (one per Kind)", rest)
	}
}

func TestChromePidTidMapping(t *testing.T) {
	out := export(t, func(c *Chrome) { c.Stalls = true }, allKindEvents())
	byCat := map[string][]chromeEvent{}
	for _, e := range out {
		if e.Name == "process_name" || e.Name == "thread_name" {
			continue
		}
		byCat[e.Cat] = append(byCat[e.Cat], e)
	}

	// Firing: complete event on the firing cell's thread, its unit's process.
	f := byCat["firing"][0]
	if f.Ph != "X" || f.Pid != 0 || f.Tid != 0 || f.Name != "mul" || f.Ts != 1 {
		t.Errorf("firing event = %+v", f)
	}
	// Stall: instant on the stalled cell, named by reason.
	s := byCat["stall"][0]
	if s.Ph != "i" || s.Tid != 1 || s.Name != "stall: operand-wait" {
		t.Errorf("stall event = %+v", s)
	}
	// FU events: pid is the FU endpoint, tid the shipping cell.
	for _, fu := range byCat["fu"] {
		if fu.Pid != 1 || fu.Tid != 2 {
			t.Errorf("fu event pid/tid = %d/%d, want 1/2 (%+v)", fu.Pid, fu.Tid, fu)
		}
	}
	// Packets: send is attributed to the source endpoint, deliver to the
	// destination endpoint; token/ack land on the receiving cell's process.
	for _, p := range byCat["packet"] {
		switch {
		case strings.HasPrefix(p.Name, "send"):
			if p.Pid != 0 || p.Tid != 2 {
				t.Errorf("send pid/tid = %d/%d, want src=0/cell=2", p.Pid, p.Tid)
			}
		case strings.HasPrefix(p.Name, "deliver"):
			if p.Pid != 1 || p.Tid != 2 {
				t.Errorf("deliver pid/tid = %d/%d, want dst=1/cell=2", p.Pid, p.Tid)
			}
			if p.Args["transit"].(float64) != 2 {
				t.Errorf("deliver transit = %v, want 2", p.Args["transit"])
			}
		case p.Name == "token":
			if p.Pid != 0 || p.Tid != 1 {
				t.Errorf("token pid/tid = %d/%d, want CellUnit[1]=0/cell=1", p.Pid, p.Tid)
			}
		case p.Name == "ack":
			if p.Pid != 0 || p.Tid != 0 {
				t.Errorf("ack pid/tid = %d/%d, want CellUnit[0]=0/cell=0", p.Pid, p.Tid)
			}
		}
	}
}

// Toggles: stalls are omitted by default, packets can be switched off, and
// the output stays valid JSON in every configuration — including an empty
// run that only ever sees Start/Close.
func TestChromeToggles(t *testing.T) {
	out := export(t, nil, allKindEvents())
	for _, e := range out {
		if e.Cat == "stall" {
			t.Errorf("stall exported with Stalls=false: %+v", e)
		}
	}
	out = export(t, func(c *Chrome) { c.Packets = false }, allKindEvents())
	for _, e := range out {
		if e.Cat == "packet" {
			t.Errorf("packet exported with Packets=false: %+v", e)
		}
	}
	if got := export(t, nil, nil); len(got) != 5 {
		t.Errorf("empty run exported %d records, want 5 metadata records", len(got))
	}
}

// Meta.Format must round-trip every Kind, Reason, and PacketKind string —
// the formatted line for a representative event of each enum value contains
// exactly that value's String() form.
func TestMetaFormatRoundTripsStrings(t *testing.T) {
	m := chromeMeta()
	kinds := []Kind{KindFiring, KindToken, KindAck, KindSend, KindDeliver,
		KindFUStart, KindFUDone, KindStall}
	for _, k := range kinds {
		e := Event{Cycle: 7, Kind: k, Cell: 0, Unit: 0, Src: 0, Dst: 1}
		line := m.Format(e)
		if !strings.Contains(line, k.String()) {
			t.Errorf("Format(%v) = %q, missing kind string %q", k, line, k.String())
		}
		if !strings.Contains(line, "c=7") {
			t.Errorf("Format(%v) = %q, missing cycle", k, line)
		}
	}
	for _, r := range []Reason{ReasonNone, ReasonOperandWait, ReasonAckWait,
		ReasonUnitBusy, ReasonDone} {
		line := m.Format(Event{Kind: KindStall, Cell: 1, Reason: r})
		if !strings.Contains(line, "("+r.String()+")") {
			t.Errorf("Format(stall %v) = %q, missing reason string %q", r, line, r.String())
		}
	}
	for p := PacketKind(0); p < NumPacketKinds; p++ {
		line := m.Format(Event{Kind: KindSend, Src: 0, Dst: 1, Cell: -1, Packet: p})
		if !strings.Contains(line, p.String()) {
			t.Errorf("Format(send %v) = %q, missing packet string %q", p, line, p.String())
		}
	}
	// Distinct enum values must render distinct strings (a stuck String()
	// method would silently merge series labels in /metrics).
	seen := map[string]Kind{}
	for _, k := range kinds {
		s := k.String()
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %v and %v share the string %q", prev, k, s)
		}
		seen[s] = k
	}
}
