// Benchmarks regenerating every figure and quantitative claim of the
// paper's evaluation (experiments E1–E14 of DESIGN.md). Each benchmark
// reports the paper's headline quantity via b.ReportMetric — II/cycles-
// per-result (2 = fully pipelined maximum), buffer counts, packet
// fractions — alongside the usual ns/op. cmd/dfbench prints the same
// measurements as tables; EXPERIMENTS.md records paper-vs-measured.
package staticpipe

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"staticpipe/internal/balance"
	"staticpipe/internal/exec"
	"staticpipe/internal/foriter"
	"staticpipe/internal/graph"
	"staticpipe/internal/machine"
	"staticpipe/internal/recurrence"
	"staticpipe/internal/value"
)

// --- shared program sources -------------------------------------------

func fig2Program(n int) (string, map[string][]Value) {
	src := fmt.Sprintf(`
param n = %d;
input A : array[real] [1, n];
input B : array[real] [1, n];
Y : array[real] :=
  forall i in [1, n]
    y : real := A[i]*B[i];
  construct (y + 2.)*(y - 3.)
  endall;
output Y;
`, n)
	a := make([]float64, n)
	bs := make([]float64, n)
	for i := range a {
		a[i] = float64(i) * 0.5
		bs[i] = 3 - float64(i)*0.25
	}
	return src, map[string][]Value{"A": Reals(a), "B": Reals(bs)}
}

func fig4Program(m int) (string, map[string][]Value) {
	src := fmt.Sprintf(`
param m = %d;
input C : array[real] [0, m+1];
S : array[real] :=
  forall i in [1, m]
  construct 0.25 * (C[i-1] + 2.*C[i] + C[i+1])
  endall;
output S;
`, m)
	c := make([]float64, m+2)
	for i := range c {
		c[i] = math.Sin(float64(i) / 5)
	}
	return src, map[string][]Value{"C": Reals(c)}
}

func fig5Program(n int) (string, map[string][]Value) {
	src := fmt.Sprintf(`
param n = %d;
input A : array[real] [1, n];
input B : array[real] [1, n];
input C : array[real] [1, n];
Y : array[real] :=
  forall i in [1, n]
  construct if C[i] > 0. then -(A[i] + B[i]) else 5.*(A[i]*B[i] + 2.) endif
  endall;
output Y;
`, n)
	a := make([]float64, n)
	bs := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = float64(i%11) - 5
		bs[i] = float64(i%7) - 3
		c[i] = math.Cos(float64(i))
	}
	return src, map[string][]Value{"A": Reals(a), "B": Reals(bs), "C": Reals(c)}
}

func example1Program(m int) (string, map[string][]Value) {
	src := fmt.Sprintf(`
param m = %d;
input B : array[real] [0, m+1];
input C : array[real] [0, m+1];
A : array[real] :=
  forall i in [0, m+1]
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
  construct B[i]*(P*P)
  endall;
output A;
`, m)
	bs := make([]float64, m+2)
	c := make([]float64, m+2)
	for i := range bs {
		bs[i] = 1 + float64(i%5)/5
		c[i] = math.Sin(float64(i) / 3)
	}
	return src, map[string][]Value{"B": Reals(bs), "C": Reals(c)}
}

func example2Program(m int) (string, map[string][]Value) {
	src := fmt.Sprintf(`
param m = %d;
input A : array[real] [1, m];
input B : array[real] [1, m];
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.]
  do
    let P : real := A[i]*T[i-1] + B[i]
    in if i < m then iter T := T[i: P]; i := i + 1 enditer
       else T[i: P] endif
    endlet
  endfor;
output X;
`, m)
	a := make([]float64, m)
	bs := make([]float64, m)
	for i := range a {
		a[i] = 0.4 + 0.5*math.Sin(float64(i))
		bs[i] = float64(i%6) - 2.5
	}
	return src, map[string][]Value{"A": Reals(a), "B": Reals(bs)}
}

func fig3Program(m int) (string, map[string][]Value) {
	src := fmt.Sprintf(`
param m = %d;
input B : array[real] [0, m+1];
input C : array[real] [0, m+1];
A : array[real] :=
  forall i in [0, m+1]
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
  construct B[i]*(P*P)
  endall;
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.]
  do
    let P : real := A[i]*T[i-1] + B[i]
    in if i < m then iter T := T[i: P]; i := i + 1 enditer
       else T[i: P] endif
    endlet
  endfor;
output X;
`, m)
	bs := make([]float64, m+2)
	c := make([]float64, m+2)
	for i := range bs {
		bs[i] = 0.1 + float64(i%4)/10
		c[i] = math.Cos(float64(i) / 4)
	}
	return src, map[string][]Value{"B": Reals(bs), "C": Reals(c)}
}

// runProgram compiles (once) and measures repeated runs, reporting the
// observed initiation interval at the named output.
func runProgram(b *testing.B, src string, inputs map[string][]Value, output string, opts Options) *RunResult {
	b.Helper()
	u, err := Compile(src, opts)
	if err != nil {
		b.Fatal(err)
	}
	var res *RunResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = u.Run(inputs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.II(output), "cycles/result")
	b.ReportMetric(float64(res.Exec.Cycles), "cycles/run")
	return res
}

// --- E1: Fig 2, the scalar pipeline -----------------------------------

func BenchmarkE1Fig2ScalarPipeline(b *testing.B) {
	src, inputs := fig2Program(1024)
	res := runProgram(b, src, inputs, "Y", Options{})
	if !FullyPipelined(res, "Y") {
		b.Fatalf("not fully pipelined: II=%v", res.II("Y"))
	}
}

// --- E2: §3, rate independent of stage count --------------------------

func BenchmarkE2StageSweep(b *testing.B) {
	for _, stages := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("stages=%d", stages), func(b *testing.B) {
			vals := make([]float64, 512)
			for i := range vals {
				vals[i] = float64(i)
			}
			var ii float64
			for i := 0; i < b.N; i++ {
				g := graph.New()
				prev := g.AddSource("in", value.Reals(vals))
				for s := 0; s < stages; s++ {
					id := g.Add(graph.OpID, "")
					g.Connect(prev, id, 0)
					prev = id
				}
				g.Connect(prev, g.AddSink("out"), 0)
				res, err := exec.Run(g, exec.Options{})
				if err != nil {
					b.Fatal(err)
				}
				ii = res.II("out")
			}
			b.ReportMetric(ii, "cycles/result")
			if ii != 2 {
				b.Fatalf("stages=%d: II=%v, want 2", stages, ii)
			}
		})
	}
}

// --- E3: Fig 4, gated array selection ---------------------------------

func BenchmarkE3Fig4ArraySelection(b *testing.B) {
	for _, m := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			src, inputs := fig4Program(m)
			res := runProgram(b, src, inputs, "S", Options{})
			if !FullyPipelined(res, "S") {
				b.Fatalf("not fully pipelined: II=%v", res.II("S"))
			}
		})
	}
	b.Run("unbalanced", func(b *testing.B) {
		src, inputs := fig4Program(1024)
		res := runProgram(b, src, inputs, "S", Options{NoBalance: true})
		if FullyPipelined(res, "S") {
			b.Fatal("unbalanced graph should not reach the maximum rate")
		}
	})
}

// --- E4: Fig 5, the pipelined conditional -----------------------------

func BenchmarkE4Fig5Conditional(b *testing.B) {
	src, inputs := fig5Program(1024)
	b.Run("balanced", func(b *testing.B) {
		res := runProgram(b, src, inputs, "Y", Options{})
		if !FullyPipelined(res, "Y") {
			b.Fatalf("not fully pipelined: II=%v", res.II("Y"))
		}
	})
	b.Run("unbalanced", func(b *testing.B) {
		runProgram(b, src, inputs, "Y", Options{NoBalance: true})
	})
}

// --- E5: Fig 6 / Example 1, the primitive forall ----------------------

func BenchmarkE5Fig6Forall(b *testing.B) {
	for _, m := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			src, inputs := example1Program(m)
			res := runProgram(b, src, inputs, "A", Options{})
			if !FullyPipelined(res, "A") {
				b.Fatalf("not fully pipelined: II=%v", res.II("A"))
			}
		})
	}
}

// --- E6/E7: Figs 7 and 8, Todd vs companion for-iter ------------------

func BenchmarkE6Fig7Todd(b *testing.B) {
	src, inputs := example2Program(1024)
	res := runProgram(b, src, inputs, "X", Options{ForIterScheme: ForIterTodd})
	if ii := res.II("X"); ii != 3 {
		b.Fatalf("Todd II=%v, want 3 (the paper's 1/3 rate)", ii)
	}
}

func BenchmarkE7Fig8Companion(b *testing.B) {
	src, inputs := example2Program(1024)
	res := runProgram(b, src, inputs, "X", Options{ForIterScheme: ForIterComp})
	if ii := res.II("X"); ii != 2 {
		b.Fatalf("companion II=%v, want 2 (Theorem 3)", ii)
	}
	b.ReportMetric(3.0/res.II("X"), "speedup-vs-todd")
}

// --- E8: Fig 3 / Theorem 4, the composed pipe-structured program -------

func BenchmarkE8Fig3PipeStructured(b *testing.B) {
	src, inputs := fig3Program(1024)
	res := runProgram(b, src, inputs, "X", Options{})
	if !FullyPipelined(res, "X") {
		b.Fatalf("composed program not fully pipelined: II=%v", res.II("X"))
	}
}

// --- E9: §8, balancing cost and optimality ----------------------------

func randomDAG(rng *rand.Rand, n int) []balance.Constraint {
	var cons []balance.Constraint
	for u := 0; u < n; u++ {
		for k := 0; k < 3; k++ {
			v := u + 1 + rng.Intn(n-u)
			if v < n {
				cons = append(cons, balance.Constraint{U: u, V: v, W: 1})
			}
		}
	}
	return cons
}

func BenchmarkE9Balancing(b *testing.B) {
	for _, n := range []int{50, 200, 1000} {
		cons := randomDAG(rand.New(rand.NewSource(9)), n)
		b.Run(fmt.Sprintf("optimal/n=%d", n), func(b *testing.B) {
			var total int64
			for i := 0; i < b.N; i++ {
				pi, err := balance.Solve(n, cons)
				if err != nil {
					b.Fatal(err)
				}
				total = balance.TotalSlack(cons, pi)
			}
			b.ReportMetric(float64(total), "buffers")
		})
		b.Run(fmt.Sprintf("naive/n=%d", n), func(b *testing.B) {
			var total int64
			for i := 0; i < b.N; i++ {
				pi, err := balance.Naive(n, cons)
				if err != nil {
					b.Fatal(err)
				}
				total = balance.TotalSlack(cons, pi)
			}
			b.ReportMetric(float64(total), "buffers")
		})
	}
}

// --- E10: §9, the delay-for-rate interleaved recurrence ----------------

func BenchmarkE10DelayFIFO(b *testing.B) {
	n := 256
	for _, rows := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			var ii float64
			for i := 0; i < b.N; i++ {
				g := graph.New()
				av := make([]value.Value, rows*n)
				bv := make([]value.Value, rows*n)
				for j := range av {
					av[j] = value.R(0.7)
					bv[j] = value.R(float64(j%5) - 2)
				}
				out, err := foriter.InterleavedLinear(g, "x", rows, n,
					g.AddSource("a", av), g.AddSource("b", bv),
					value.Reals(make([]float64, rows)))
				if err != nil {
					b.Fatal(err)
				}
				g.Connect(out, g.AddSink("x"), 0)
				res, err := exec.Run(g, exec.Options{})
				if err != nil {
					b.Fatal(err)
				}
				ii = res.II("x")
			}
			b.ReportMetric(ii, "cycles/result")
			b.ReportMetric(float64(2*rows-3), "fifo-stages")
			if ii != 2 {
				b.Fatalf("rows=%d: II=%v, want 2", rows, ii)
			}
		})
	}
}

// --- E11: §7, companion tree depth -------------------------------------

func BenchmarkE11CompanionTree(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	for _, p := range []int{2, 4, 8, 16} {
		ps := make([]recurrence.Param, p)
		for i := range ps {
			ps[i] = recurrence.Param{A: rng.Float64(), B: rng.Float64()}
		}
		b.Run(fmt.Sprintf("tree/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				recurrence.ComposeTree(ps)
			}
			b.ReportMetric(float64(recurrence.TreeDepth(p)), "levels")
		})
		b.Run(fmt.Sprintf("linear/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := ps[0]
				for j := 1; j < len(ps); j++ {
					c = recurrence.G(ps[j], c)
				}
				_ = c
			}
			b.ReportMetric(float64(p-1), "levels")
		})
	}
}

// --- E12: §2, array-memory packet fraction ----------------------------

func BenchmarkE12AMTraffic(b *testing.B) {
	src := `
param m = 64;
input B : array[real] [0, m+1];
input C : array[real] [0, m+1];
A : array[real] :=
  forall i in [0, m+1]
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
    Q : real := P*P + 0.5*P + 1.;
    S : real := Q*Q - P*Q + 2.*P;
  construct B[i]*(S*S) + Q
  endall;
output A;
`
	u, err := Compile(src, Options{})
	if err != nil {
		b.Fatal(err)
	}
	m := 64
	bs := make([]float64, m+2)
	c := make([]float64, m+2)
	for i := range bs {
		bs[i] = 1
		c[i] = float64(i)
	}
	inputs := map[string][]Value{"B": Reals(bs), "C": Reals(c)}
	var frac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunMachine(u, inputs, MachineConfig{PEs: 8, AMs: 2})
		if err != nil {
			b.Fatal(err)
		}
		frac = res.AMFraction()
	}
	b.ReportMetric(frac, "am-fraction")
	if frac > 1.0/8 {
		b.Fatalf("AM fraction %.3f exceeds the paper's 1/8", frac)
	}
}

// --- E13: machine-level PE scaling -------------------------------------

func BenchmarkE13PEScaling(b *testing.B) {
	src, inputs := fig3Program(128)
	u, err := Compile(src, Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, pes := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("pes=%d", pes), func(b *testing.B) {
			var cycles int
			var util float64
			for i := 0; i < b.N; i++ {
				res, err := RunMachine(u, inputs, MachineConfig{PEs: pes, AMs: 4})
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
				util = res.Utilization()
			}
			b.ReportMetric(float64(cycles), "machine-cycles")
			b.ReportMetric(util, "pe-utilization")
		})
	}
}

// --- E14: §6, forall parallel vs pipeline scheme ------------------------

func BenchmarkE14ForallSchemes(b *testing.B) {
	src, inputs := example1Program(48)
	for _, scheme := range []struct {
		name string
		opt  Options
	}{
		{"pipeline", Options{ForallScheme: ForallPipeline}},
		{"parallel", Options{ForallScheme: ForallParallel}},
	} {
		b.Run(scheme.name, func(b *testing.B) {
			u, err := Compile(src, scheme.opt)
			if err != nil {
				b.Fatal(err)
			}
			var res *RunResult
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = u.Run(inputs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(u.Compiled.Graph.ComputeStats().Cells), "cells")
			b.ReportMetric(res.II("A"), "cycles/result")
		})
	}
}

// --- E15: §9 extension, two-dimensional arrays --------------------------

func BenchmarkE15TwoD(b *testing.B) {
	src := `
param m = 24;
param n = 24;
input U : array2[real] [0, m+1][0, n+1];
V : array2[real] :=
  forall i in [0, m+1], j in [0, n+1]
  construct if (i = 0) | (i = m+1) | (j = 0) | (j = n+1)
            then U[i, j]
            else 0.25 * (U[i-1, j] + U[i+1, j] + U[i, j-1] + U[i, j+1])
            endif
  endall;
output V;
`
	u, err := Compile(src, Options{})
	if err != nil {
		b.Fatal(err)
	}
	side := 26
	us := make([]value.Value, side*side)
	for i := range us {
		us[i] = value.R(float64(i%9) / 9)
	}
	inputs := map[string][]Value{"U": us}
	var res *RunResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = u.Run(inputs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.II("V"), "cycles/result")
	if !FullyPipelined(res, "V") {
		b.Fatalf("2-D sweep not fully pipelined: II=%v", res.II("V"))
	}
}

// --- E16: ablations ------------------------------------------------------

func BenchmarkE16LiteralControl(b *testing.B) {
	src, inputs := example1Program(64)
	for _, cfg := range []struct {
		name string
		opt  Options
	}{
		{"idealized", Options{}},
		{"literal", Options{LiteralControl: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			u, err := Compile(src, cfg.opt)
			if err != nil {
				b.Fatal(err)
			}
			var res *RunResult
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = u.Run(inputs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(u.Compiled.Graph.ComputeStats().Cells), "cells")
			b.ReportMetric(res.II("A"), "cycles/result")
		})
	}
}

func BenchmarkE16Placement(b *testing.B) {
	src, inputs := fig3Program(64)
	u, err := Compile(src, Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name   string
		assign machine.Assignment
	}{
		{"round-robin", machine.RoundRobin},
		{"random", machine.Random},
		{"by-stage", machine.ByStage},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var cycles int
			for i := 0; i < b.N; i++ {
				res, err := RunMachine(u, inputs, MachineConfig{PEs: 8, AMs: 4, Assign: cfg.assign, Seed: 5})
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "machine-cycles")
		})
	}
}

func BenchmarkE16Network(b *testing.B) {
	src, inputs := fig3Program(64)
	u, err := Compile(src, Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		net  machine.NetworkKind
	}{
		{"crossbar", machine.Crossbar},
		{"butterfly", machine.Butterfly},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var cycles int
			for i := 0; i < b.N; i++ {
				res, err := RunMachine(u, inputs, MachineConfig{PEs: 8, AMs: 4, Network: cfg.net})
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "machine-cycles")
		})
	}
}

// --- E18: compilation cost of the pass pipeline --------------------------

// BenchmarkCompile tracks compile-time cost across pass pipelines (the
// per-pass split is available from Unit.PassStats or dfc -stats).
func BenchmarkCompile(b *testing.B) {
	src, _ := fig3Program(256)
	for _, cfg := range []struct {
		name   string
		passes string
	}{
		{"none", ""},
		{"balance", "balance"},
		{"balance-naive", "balance-naive"},
		{"dedup-balance", "dedup,balance"},
		{"full", "literal-control,arm-slack,dedup,balance,expand-fifos"},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			opts := Options{Passes: cfg.passes}
			if cfg.passes == "" {
				opts.NoBalance = true
			}
			var u *Unit
			var err error
			for i := 0; i < b.N; i++ {
				u, err = Compile(src, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(u.Compiled.Graph.NumNodes()), "cells")
		})
	}
}

// --- E17: common-cell elimination ablation -------------------------------

func BenchmarkE17Dedup(b *testing.B) {
	src, inputs := fig3Program(256)
	for _, cfg := range []struct {
		name string
		opt  Options
	}{
		{"plain", Options{}},
		{"dedup", Options{Dedup: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			u, err := Compile(src, cfg.opt)
			if err != nil {
				b.Fatal(err)
			}
			var res *RunResult
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = u.Run(inputs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(u.Compiled.Graph.ComputeStats().Cells), "cells")
			b.ReportMetric(res.II("X"), "cycles/result")
		})
	}
}
