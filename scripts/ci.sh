#!/bin/sh
# CI gate: formatting, vet, build, and the full test suite under the race
# detector. Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== live-telemetry race pin =="
# The concurrent-snapshot path (readers scraping trace.Live while parallel
# simulator goroutines emit) gets a dedicated high-iteration race pass: the
# full-suite -race run above exercises it only once.
go test -race -count=3 -run 'TestLiveConcurrentSnapshot|TestConcurrentScrapeDuringEmission|TestParallelWorkloadWithTelemetryIsRaceFree' \
    ./internal/trace/ ./internal/telemetry/ ./cmd/dfbench/

echo "== differential pass quick-check =="
go test -run 'TestDifferential' ./internal/core/

echo "== bounded fuzz =="
go test -run '^$' -fuzz 'FuzzParse$'     -fuzztime 10s ./internal/val/
go test -run '^$' -fuzz 'FuzzParseExpr$' -fuzztime 10s ./internal/val/
go test -run '^$' -fuzz 'FuzzUnmarshal$' -fuzztime 10s ./internal/graph/

echo "== bench guard =="
# Runs the quick benchmark suite and fails on a >20% aggregate cycles/sec
# regression against the committed baseline; dfbench skips the comparison
# gracefully when no baseline has been committed yet. Refresh the baseline
# with: go run ./cmd/dfbench -quick -json BENCH_baseline.json
go run ./cmd/dfbench -quick -json BENCH_ci.json -compare BENCH_baseline.json >/tmp/dfbench-ci.log 2>&1 || {
    cat /tmp/dfbench-ci.log
    exit 1
}
grep -E 'bench guard|skipping' /tmp/dfbench-ci.log
rm -f BENCH_ci.json

echo "CI OK"
