#!/bin/sh
# CI gate: formatting, vet, build, and the full test suite under the race
# detector. Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== live-telemetry race pin =="
# The concurrent-snapshot path (readers scraping trace.Live while parallel
# simulator goroutines emit) gets a dedicated high-iteration race pass: the
# full-suite -race run above exercises it only once.
go test -race -count=3 -run 'TestLiveConcurrentSnapshot|TestConcurrentScrapeDuringEmission|TestParallelWorkloadWithTelemetryIsRaceFree' \
    ./internal/trace/ ./internal/telemetry/ ./cmd/dfbench/

echo "== differential pass quick-check =="
go test -run 'TestDifferential' ./internal/core/

echo "== sharded engine race pin =="
# The sharded parallel engine's worker loops (spin barriers, cross-shard
# rings, merge phases) get a dedicated repeated race pass over small graphs
# at several worker counts; the full-suite -race run exercises each shape
# only once.
go test -race -count=3 -run 'Sharded|ShardSweep|CoreWorkersOption' \
    ./internal/exec/ ./internal/machine/ ./internal/core/ ./internal/partition/

echo "== service admission race pin =="
# The admission controller's contended paths (queue overflow, token
# buckets, cancel-vs-begin CAS, eviction under load) get a dedicated
# repeated race pass; the full-suite -race run exercises each once.
go test -race -count=3 -run 'TestQueueOverflowRejects429|TestTenantThrottle|TestCancelQueuedJob|TestEviction|TestSubmitAfterCloseRejectsShutdown' \
    ./internal/serve/

echo "== flight-recorder race pin =="
# Concurrent /debug/flight dumps race live span recording and job traffic;
# the full-suite -race run exercises the interleaving only once.
go test -race -count=3 -run 'TestFlightDumpDuringActiveRuns|TestFlightConcurrentDump' \
    ./internal/serve/ ./internal/obs/

echo "== service load smoke =="
# End-to-end over a real socket: concurrent submissions across both
# admission paths with mid-flight cancels. The binary exits nonzero unless
# every admitted job reaches a terminal state, the admission ledger
# reconciles (submitted == admitted + rejected per tenant), overflow comes
# back as 429, the /metrics exposition passes the Prometheus text-format
# lint, the SLO verdict reads clean, and the goroutine count returns to its
# pre-service baseline after the graceful drain.
go run ./cmd/dfserve -smoke 48 -offload 1000 >/tmp/dfserve-smoke.log 2>&1 || {
    cat /tmp/dfserve-smoke.log
    exit 1
}
grep -E 'exposition lint ok|cache:|slo:|smoke:' /tmp/dfserve-smoke.log
grep -q '^slo: ok$' /tmp/dfserve-smoke.log || {
    echo "service smoke: clean run did not report 'slo: ok'" >&2
    exit 1
}
# The smoke submits only two distinct programs, so the artifact cache must
# serve nearly everything after the first compile of each: gate the
# greppable hit-rate line (hits + coalesced over all lookups) at >= 80%.
rate=$(sed -n 's/^cache: .*hit rate \([0-9]*\)%.*/\1/p' /tmp/dfserve-smoke.log)
if [ -z "$rate" ]; then
    echo "service smoke: no artifact-cache line in the smoke output" >&2
    exit 1
fi
if [ "$rate" -lt 80 ]; then
    echo "service smoke: artifact-cache hit rate $rate% < 80%" >&2
    exit 1
fi

echo "== SLO burn smoke =="
# The degraded path on a real socket: a starved pool with an unmeetable
# queue-wait objective must trip the greppable burn verdict, and the
# flight recorder must hold the offending span trees (dfserve -saturate
# exits nonzero itself if /debug/flight comes back empty).
go run ./cmd/dfserve -smoke 24 -saturate >/tmp/dfserve-burn.log 2>&1 || {
    cat /tmp/dfserve-burn.log
    exit 1
}
grep -E 'slo: burning|debug/flight' /tmp/dfserve-burn.log
grep -q 'slo: burning' /tmp/dfserve-burn.log || {
    echo "SLO burn smoke: saturated run did not report 'slo: burning'" >&2
    exit 1
}
rm -f /tmp/dfserve-smoke.log /tmp/dfserve-burn.log

echo "== sharded engine determinism smoke =="
# The contract is byte-identical output for any worker count: run dfsim
# sequentially and at P=4 on two example programs, on both simulator cores,
# and diff the complete stdout.
go build -o /tmp/dfsim-ci ./cmd/dfsim
for prog in testdata/fig3.val testdata/example1.val; do
    /tmp/dfsim-ci "$prog" >/tmp/dfsim-seq.out
    /tmp/dfsim-ci -workers 4 "$prog" >/tmp/dfsim-par.out
    cmp /tmp/dfsim-seq.out /tmp/dfsim-par.out || {
        echo "determinism smoke: exec output diverges at P=4 on $prog" >&2
        exit 1
    }
    /tmp/dfsim-ci -machine "$prog" >/tmp/dfsim-seq.out
    /tmp/dfsim-ci -machine -workers 4 "$prog" >/tmp/dfsim-par.out
    cmp /tmp/dfsim-seq.out /tmp/dfsim-par.out || {
        echo "determinism smoke: machine output diverges at P=4 on $prog" >&2
        exit 1
    }
    echo "byte-identical at P=4 on both cores: $prog"
done

echo "== batched execution differential sweep =="
# Widening arc state to B lanes must not perturb lane 0: dfsim's stdout with
# -batch B is byte-identical to the scalar run on both simulator cores, with
# and without lane sharding. (The per-lane summary goes to stderr.)
for prog in testdata/fig3.val testdata/example1.val; do
    /tmp/dfsim-ci "$prog" >/tmp/dfsim-seq.out
    /tmp/dfsim-ci -machine "$prog" >/tmp/dfsim-mseq.out
    for b in 4 16; do
        for w in 1 4; do
            /tmp/dfsim-ci -batch "$b" -workers "$w" "$prog" >/tmp/dfsim-par.out 2>/dev/null
            cmp /tmp/dfsim-seq.out /tmp/dfsim-par.out || {
                echo "batch sweep: exec lane 0 diverges at B=$b W=$w on $prog" >&2
                exit 1
            }
            /tmp/dfsim-ci -machine -batch "$b" -workers "$w" "$prog" >/tmp/dfsim-par.out 2>/dev/null
            cmp /tmp/dfsim-mseq.out /tmp/dfsim-par.out || {
                echo "batch sweep: machine lane 0 diverges at B=$b W=$w on $prog" >&2
                exit 1
            }
        done
    done
    echo "lane 0 byte-identical at B in {4,16}, W in {1,4}, both cores: $prog"
done
echo "== placement determinism smoke =="
# Placement decides where packets travel, never what a run computes: the
# machine's output lines (sink value streams) must be byte-identical across
# every -place strategy. Cycle counts legitimately differ, so only the
# "(N elements)" output lines are diffed, not the full stdout.
for prog in testdata/fig3.val testdata/example1.val; do
    /tmp/dfsim-ci -machine "$prog" | grep 'elements' >/tmp/dfsim-seq.out
    for pm in stage random hotspot mincost profile; do
        /tmp/dfsim-ci -machine -place "$pm" "$prog" | grep 'elements' >/tmp/dfsim-par.out
        cmp /tmp/dfsim-seq.out /tmp/dfsim-par.out || {
            echo "placement smoke: machine outputs diverge under -place $pm on $prog" >&2
            exit 1
        }
    done
    echo "outputs byte-identical across all placements: $prog"
done

echo "== placement contention gate =="
# The tentpole claim in one command: re-placing the hotspot demo with the
# min-cost mapping must grade as a contention improvement in dftrace's
# before/after verdict.
go build -o /tmp/dftrace-ci ./cmd/dftrace
/tmp/dftrace-ci -machine -hotspot -place mincost testdata/example1.val >/tmp/dftrace-ci.out
grep 'contention: improved' /tmp/dftrace-ci.out || {
    echo "placement gate: min-cost re-placement did not improve the hotspot demo:" >&2
    tail -5 /tmp/dftrace-ci.out >&2
    exit 1
}
rm -f /tmp/dftrace-ci /tmp/dftrace-ci.out
rm -f /tmp/dfsim-ci /tmp/dfsim-seq.out /tmp/dfsim-mseq.out /tmp/dfsim-par.out

echo "== batched engine race pin =="
# The batched engines' lane-sharded worker loops (contiguous lane ranges,
# absolute lane-bit masks, mid-batch cancellation) get a dedicated repeated
# race pass; the full-suite -race run exercises each shape only once.
go test -race -count=3 -run 'Batch|CancelMidBatch' \
    ./internal/exec/ ./internal/machine/ ./internal/core/ ./internal/serve/

echo "== artifact cache race pin =="
# The cache's contended paths — singleflight coalescing, LRU/byte
# eviction, one shared artifact executing from many goroutines over pooled
# run state — get a dedicated repeated race pass; the full-suite -race run
# exercises each interleaving only once.
go test -race -count=3 -run 'Singleflight|CacheEviction|SharedArtifact|Prepared' \
    ./internal/artifact/ ./internal/core/ ./internal/exec/ ./internal/machine/ ./internal/serve/

echo "== bounded fuzz =="
go test -run '^$' -fuzz 'FuzzParse$'     -fuzztime 10s ./internal/val/
go test -run '^$' -fuzz 'FuzzParseExpr$' -fuzztime 10s ./internal/val/
go test -run '^$' -fuzz 'FuzzUnmarshal$' -fuzztime 10s ./internal/graph/

echo "== bench guard =="
# Runs the quick benchmark suite and fails on a >20% aggregate cycles/sec
# regression against the committed baseline; dfbench skips the comparison
# gracefully when no baseline has been committed yet. Both sides take the
# median of 3 suite passes so a single noisy pass cannot fail (or refresh)
# the gate. Refresh the baseline with:
#   go run ./cmd/dfbench -quick -samples 3 -json BENCH_baseline.json
go run ./cmd/dfbench -quick -samples 3 -json BENCH_ci.json -compare BENCH_baseline.json >/tmp/dfbench-ci.log 2>&1 || {
    cat /tmp/dfbench-ci.log
    exit 1
}
grep -E 'bench guard|skipping' /tmp/dfbench-ci.log
rm -f BENCH_ci.json

echo "CI OK"
