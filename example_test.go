package staticpipe_test

import (
	"fmt"

	"staticpipe"
)

// Example compiles the paper's Example 1 and runs it fully pipelined.
func Example() {
	src := `
param m = 6;
input B : array[real] [0, m+1];
input C : array[real] [0, m+1];
A : array[real] :=
  forall i in [0, m+1]
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
  construct B[i]*(P*P)
  endall;
output A;
`
	u, err := staticpipe.Compile(src, staticpipe.Options{})
	if err != nil {
		panic(err)
	}
	b := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	c := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	res, err := u.Run(map[string][]staticpipe.Value{
		"B": staticpipe.Reals(b),
		"C": staticpipe.Reals(c),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("A[1] = %.2f\n", res.Outputs["A"].Elems[1].AsReal())
	fmt.Printf("II = %.1f cycles per element\n", res.II("A"))
	fmt.Printf("fully pipelined: %v\n", staticpipe.FullyPipelined(res, "A"))
	// Output:
	// A[1] = 1.00
	// II = 2.0 cycles per element
	// fully pipelined: true
}

// ExampleCompile_recurrence shows the companion-function scheme restoring
// the maximum rate on the paper's Example 2 (Theorem 3).
func ExampleCompile_recurrence() {
	src := `
param m = 40;
input A : array[real] [1, m];
input B : array[real] [1, m];
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.]
  do if i < m then iter T := T[i: A[i]*T[i-1] + B[i]]; i := i + 1 enditer
     else T[i: A[i]*T[i-1] + B[i]] endif
  endfor;
output X;
`
	a := make([]float64, 40)
	b := make([]float64, 40)
	for i := range a {
		a[i] = 0.5
		b[i] = 1
	}
	inputs := map[string][]staticpipe.Value{
		"A": staticpipe.Reals(a), "B": staticpipe.Reals(b),
	}
	for _, scheme := range []struct {
		name string
		opt  staticpipe.Options
	}{
		{"todd", staticpipe.Options{ForIterScheme: staticpipe.ForIterTodd}},
		{"companion", staticpipe.Options{ForIterScheme: staticpipe.ForIterComp}},
	} {
		u, err := staticpipe.Compile(src, scheme.opt)
		if err != nil {
			panic(err)
		}
		res, err := u.Run(inputs)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: II = %.0f\n", scheme.name, res.II("X"))
	}
	// Output:
	// todd: II = 3
	// companion: II = 2
}
