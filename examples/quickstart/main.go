// Quickstart: compile the paper's Example 1 — a boundary-conditioned
// smoothing forall — to a fully pipelined static dataflow instruction
// graph, run it on the firing-rule simulator, and confirm the headline
// result: one array element per two instruction times.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"staticpipe"
)

const src = `
param m = 30;
input B : array[real] [0, m+1];
input C : array[real] [0, m+1];
A : array[real] :=
  forall i in [0, m+1]                    % one element per index
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
  construct B[i]*(P*P)                    % the accumulation part
  endall;
output A;
`

func main() {
	u, err := staticpipe.Compile(src, staticpipe.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compile report:")
	fmt.Print(u.Report())

	m := 30
	b := make([]float64, m+2)
	c := make([]float64, m+2)
	for i := range b {
		b[i] = 1 + float64(i%3)/4
		c[i] = math.Sin(float64(i) / 4)
	}
	inputs := map[string][]staticpipe.Value{
		"B": staticpipe.Reals(b),
		"C": staticpipe.Reals(c),
	}

	res, err := u.Run(inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nA[0..7] = %.4f\n", staticpipe.Floats(res.Outputs["A"].Elems[:8]))
	fmt.Printf("initiation interval: %.3f cycles per element (2.0 = maximum rate)\n", res.II("A"))
	fmt.Printf("fully pipelined: %v\n", staticpipe.FullyPipelined(res, "A"))

	// Cross-check the compiled graph against the reference interpreter.
	if err := u.Validate(inputs, 1e-9); err != nil {
		log.Fatal(err)
	}
	fmt.Println("outputs verified against the reference interpreter")
}
