// Jacobi2D: the §9 multi-dimensional extension in action — a 2-D Laplace
// solver whose five-point Jacobi update compiles to a single pipelined
// instruction graph over row-major element streams. Each sweep streams the
// whole (m+2)×(n+2) grid through the dataflow pipeline; boundary values are
// carried through by the compile-time boundary condition, exactly like
// Example 1's 1-D boundary handling.
//
//	go run ./examples/jacobi2d
package main

import (
	"fmt"
	"log"
	"math"

	"staticpipe"
)

const src = `
param m = 15;
param n = 15;
input U : array2[real] [0, m+1][0, n+1];
V : array2[real] :=
  forall i in [0, m+1], j in [0, n+1]
  construct if (i = 0) | (i = m+1) | (j = 0) | (j = n+1)
            then U[i, j]        % Dirichlet boundary carried through
            else 0.25 * (U[i-1, j] + U[i+1, j] + U[i, j-1] + U[i, j+1])
            endif
  endall;
output V;
`

func main() {
	u, err := staticpipe.Compile(src, staticpipe.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(u.Report())

	m, n := 15, 15
	// boundary: V = 1 on the top edge, 0 elsewhere; interior starts at 0.
	grid := make([]float64, (m+2)*(n+2))
	for j := 0; j <= n+1; j++ {
		grid[j] = 1
	}
	pack := func(g []float64) map[string][]staticpipe.Value {
		return map[string][]staticpipe.Value{"U": staticpipe.Reals(g)}
	}

	var res *staticpipe.RunResult
	for sweep := 1; sweep <= 2000; sweep++ {
		res, err = u.Run(pack(grid))
		if err != nil {
			log.Fatal(err)
		}
		next := staticpipe.Floats(res.Outputs["V"].Elems)
		delta := 0.0
		for i := range next {
			delta = math.Max(delta, math.Abs(next[i]-grid[i]))
		}
		grid = next
		if sweep%300 == 0 || delta < 1e-5 {
			fmt.Printf("sweep %4d: max change %.6f, II = %.3f cycles/element\n",
				sweep, delta, res.II("V"))
		}
		if delta < 1e-5 {
			break
		}
	}

	// The converged potential at the grid centre of a top-heated square
	// plate: the analytic series gives ≈ 0.25 at the midpoint.
	centre := grid[(m/2+1)*(n+2)+(n/2+1)]
	fmt.Printf("centre potential: %.4f (analytic midpoint value 0.25)\n", centre)
	if err := u.Validate(pack(grid), 1e-12); err != nil {
		log.Fatal(err)
	}
	fmt.Println("final sweep verified against the reference interpreter")
}
