// Recurrence: the paper's Example 2 — the first-order linear recurrence
// x_i = A_i·x_{i-1} + B_i — compiled three ways:
//
//  1. Todd's feedback scheme (Fig 7): a 3-cell loop, rate 1/3;
//
//  2. the companion-function scheme (Fig 8, Theorem 3): the loop rewritten
//     x_i = F(c_i, x_{i-2}) with c_i = G(a_i, a_{i-1}), rate 1/2 (maximum);
//
//  3. the §9 delay-for-rate construction: many independent recurrences
//     interleaved through one FIFO-extended loop at the maximum rate.
//
//     go run ./examples/recurrence
package main

import (
	"fmt"
	"log"
	"math"

	"staticpipe"
	"staticpipe/internal/exec"
	"staticpipe/internal/foriter"
	"staticpipe/internal/graph"
	"staticpipe/internal/recurrence"
	"staticpipe/internal/value"
)

const src = `
param m = 500;
input A : array[real] [1, m];
input B : array[real] [1, m];
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.]
  do
    let P : real := A[i]*T[i-1] + B[i]
    in if i < m then iter T := T[i: P]; i := i + 1 enditer
       else T[i: P] endif
    endlet
  endfor;
output X;
`

func main() {
	m := 500
	a := make([]float64, m)
	b := make([]float64, m)
	for i := range a {
		a[i] = 0.3 + 0.6*math.Sin(float64(i)/7)
		b[i] = float64(i%9) - 4
	}
	inputs := map[string][]staticpipe.Value{
		"A": staticpipe.Reals(a),
		"B": staticpipe.Reals(b),
	}

	fmt.Println("x_i = A_i*x_{i-1} + B_i over", m, "elements")
	for _, cfg := range []struct {
		name string
		opt  staticpipe.Options
	}{
		{"Todd (Fig 7)", staticpipe.Options{ForIterScheme: staticpipe.ForIterTodd}},
		{"companion (Fig 8)", staticpipe.Options{ForIterScheme: staticpipe.ForIterComp}},
	} {
		u, err := staticpipe.Compile(src, cfg.opt)
		if err != nil {
			log.Fatal(err)
		}
		res, err := u.Run(inputs)
		if err != nil {
			log.Fatal(err)
		}
		if err := u.Validate(inputs, 1e-9); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s II = %.3f cycles/element, %5d cycles, x_%d = %.6f\n",
			cfg.name, res.II("X"), res.Exec.Cycles, m,
			res.Outputs["X"].Elems[m].AsReal())
	}

	// The §9 construction: 8 independent recurrences share one loop.
	rows, n := 8, m/8
	g := graph.New()
	av := make([]value.Value, rows*n)
	bv := make([]value.Value, rows*n)
	params := make([][]recurrence.Param, rows)
	for r := range params {
		params[r] = make([]recurrence.Param, n)
	}
	for i := 0; i < n; i++ {
		for r := 0; r < rows; r++ {
			p := recurrence.Param{A: 0.5 + float64(r)/20, B: float64((i+r)%5) - 2}
			params[r][i] = p
			av[i*rows+r] = value.R(p.A)
			bv[i*rows+r] = value.R(p.B)
		}
	}
	out, err := foriter.InterleavedLinear(g, "x", rows, n,
		g.AddSource("a", av), g.AddSource("b", bv),
		value.Reals(make([]float64, rows)))
	if err != nil {
		log.Fatal(err)
	}
	g.Connect(out, g.AddSink("x"), 0)
	res, err := exec.Run(g, exec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-18s II = %.3f cycles/element (%d rows, FIFO %d stages)\n",
		"interleaved (§9)", res.II("x"), rows, 2*rows-3)

	// Verify one interleaved row against the sequential reference.
	want := recurrence.Sequential(0, params[3])
	got := res.Output("x")[3+rows*n].AsReal() // x_n of row 3
	fmt.Printf("  row 3 final: interleaved %.6f, sequential %.6f\n", got, want[n])
}
