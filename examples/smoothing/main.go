// Smoothing: the Fig 4 kernel — 0.25*(C[i-1] + 2*C[i] + C[i+1]) — applied
// repeatedly to a noisy signal, demonstrating why the paper's balancing
// matters: the same graph without skew FIFOs computes the same values at
// 2.5x lower throughput.
//
//	go run ./examples/smoothing
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"staticpipe"
)

const kernel = `
param m = 200;
input C : array[real] [0, m+1];
S : array[real] :=
  forall i in [1, m]
  construct 0.25 * (C[i-1] + 2.*C[i] + C[i+1])
  endall;
output S;
`

func main() {
	balanced, err := staticpipe.Compile(kernel, staticpipe.Options{})
	if err != nil {
		log.Fatal(err)
	}
	unbalanced, err := staticpipe.Compile(kernel, staticpipe.Options{NoBalance: true})
	if err != nil {
		log.Fatal(err)
	}

	// a noisy signal
	m := 200
	rng := rand.New(rand.NewSource(7))
	signal := make([]float64, m+2)
	for i := range signal {
		signal[i] = math.Sin(2*math.Pi*float64(i)/40) + 0.4*(rng.Float64()-0.5)
	}

	// Three smoothing passes: each pass's output becomes the next pass's
	// interior, with the boundary elements re-padded.
	cur := signal
	for pass := 1; pass <= 3; pass++ {
		inputs := map[string][]staticpipe.Value{"C": staticpipe.Reals(cur)}
		res, err := balanced.Run(inputs)
		if err != nil {
			log.Fatal(err)
		}
		smoothed := staticpipe.Floats(res.Outputs["S"].Elems)
		fmt.Printf("pass %d: II = %.3f cycles/element, %d cycles total, roughness %.4f -> %.4f\n",
			pass, res.II("S"), res.Exec.Cycles, roughness(cur[1:m+1]), roughness(smoothed))
		next := make([]float64, m+2)
		next[0], next[m+1] = smoothed[0], smoothed[m-1]
		copy(next[1:], smoothed)
		cur = next
	}

	// The unbalanced graph: same values, throttled pipeline.
	inputs := map[string][]staticpipe.Value{"C": staticpipe.Reals(signal)}
	rb, err := balanced.Run(inputs)
	if err != nil {
		log.Fatal(err)
	}
	ru, err := unbalanced.Run(inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbalanced:   II = %.3f (%d cycles)\n", rb.II("S"), rb.Exec.Cycles)
	fmt.Printf("unbalanced: II = %.3f (%d cycles)\n", ru.II("S"), ru.Exec.Cycles)
	same := true
	for i, v := range rb.Outputs["S"].Elems {
		if v != ru.Outputs["S"].Elems[i] {
			same = false
		}
	}
	fmt.Printf("identical results: %v — balancing changes timing, never values\n", same)
}

// roughness is the mean squared second difference — a simple noise score.
func roughness(xs []float64) float64 {
	var sum float64
	for i := 1; i < len(xs)-1; i++ {
		d := xs[i-1] - 2*xs[i] + xs[i+1]
		sum += d * d
	}
	return sum / float64(len(xs)-2)
}
