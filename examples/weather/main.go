// Weather: a multi-block pipe-structured physics kernel in the spirit of
// the application codes the paper's authors analyzed ("Modeling the
// Weather with a Data Flow Supercomputer" [7]): a 1-D advection–diffusion
// time step built from five blocks — diffusion, upwind flux, limiter, an
// implicit-sweep recurrence, and the field update — compiled into one
// fully pipelined instruction graph (Theorem 4) and marched for several
// time steps, then profiled on the packet-level machine simulator.
//
//	go run ./examples/weather
package main

import (
	"fmt"
	"log"
	"math"

	"staticpipe"
	"staticpipe/internal/progs"
)

func main() {
	m := 120
	p := progs.Weather(m)
	u, err := staticpipe.Compile(p.Source, staticpipe.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("flow dependency graph blocks:")
	fmt.Print(u.Report())

	// March the field for several time steps: each step's output V becomes
	// the next step's U (boundary cells re-padded periodically).
	field := make([]float64, m+2)
	diffusivity := make([]float64, m+2)
	for i := range field {
		field[i] = math.Sin(float64(i) * 1.7)
		diffusivity[i] = 0.1 + 0.05*math.Cos(float64(i))
	}
	for step := 1; step <= 5; step++ {
		inputs := map[string][]staticpipe.Value{
			"U": staticpipe.Reals(field),
			"K": staticpipe.Reals(diffusivity),
		}
		res, err := u.Run(inputs)
		if err != nil {
			log.Fatal(err)
		}
		v := staticpipe.Floats(res.Outputs["V"].Elems)
		next := make([]float64, m+2)
		copy(next[1:], v)
		next[0], next[m+1] = v[m-1], v[0] // periodic boundary
		field = next
		fmt.Printf("step %d: II = %.3f cycles/element, energy = %.4f\n",
			step, res.II("V"), energy(v))
	}

	// Profile one step on the packet-level machine.
	inputs := map[string][]staticpipe.Value{
		"U": staticpipe.Reals(field),
		"K": staticpipe.Reals(diffusivity),
	}
	fmt.Println("\npacket-level machine (butterfly network):")
	for _, pes := range []int{2, 8, 32} {
		res, err := staticpipe.RunMachine(u, inputs, staticpipe.MachineConfig{
			PEs: pes, AMs: 4, Network: staticpipe.NetButterfly,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  PEs=%2d: %5d cycles, %6d packets (AM share %.3f), PE utilization %.1f%%\n",
			pes, res.Cycles, res.TotalPackets, res.AMFraction(), 100*res.Utilization())
	}
}

func energy(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x * x
	}
	return sum / float64(len(xs))
}
