module staticpipe

go 1.22
