// Package staticpipe reproduces Dennis & Gao, "Maximum Pipelining of Array
// Operations on Static Data Flow Machine" (MIT CSG Memo 233 / ICPP 1983):
// a compiler from pipe-structured Val programs — acyclic compositions of
// forall and for-iter array blocks — to machine-level static dataflow
// instruction graphs that run fully pipelined (one result per two
// instruction times), together with two simulators that execute those
// graphs: the firing-rule simulator of package exec and the packet-level
// machine of package machine (PEs, function units, array memories, routing
// networks).
//
// Quick start:
//
//	u, err := staticpipe.Compile(src, staticpipe.Options{})
//	res, err := u.Run(map[string][]staticpipe.Value{"C": staticpipe.Reals(data)})
//	fmt.Println(res.Outputs["A"], res.II("A")) // II == 2: fully pipelined
//
// Compilation is organized as an explicit pipeline of graph passes
// (common-cell elimination, balancing, control-generator expansion, …);
// Options.Passes selects them by name and docs/COMPILER.md documents the
// pipeline, the per-pass verifier, and the differential test harness.
//
// The Val subset, the compilation schemes (selection gating, Todd's
// for-iter scheme, the companion-function pipeline), and the balancing
// algorithms (including the min-cost-flow optimum of §8) are documented in
// DESIGN.md; EXPERIMENTS.md records the reproduction of every figure and
// quantitative claim in the paper.
package staticpipe

import (
	"staticpipe/internal/core"
	"staticpipe/internal/exec"
	"staticpipe/internal/forall"
	"staticpipe/internal/foriter"
	"staticpipe/internal/machine"
	"staticpipe/internal/mcm"
	"staticpipe/internal/passes"
	"staticpipe/internal/value"
)

// Value is a scalar datum (integer, real, or boolean).
type Value = value.Value

// Reals converts a float64 slice to a value stream.
func Reals(xs []float64) []Value { return value.Reals(xs) }

// Ints converts an int64 slice to a value stream.
func Ints(xs []int64) []Value { return value.Ints(xs) }

// Floats converts a value stream back to float64s.
func Floats(vs []Value) []float64 { return value.Floats(vs) }

// Options selects compilation strategies; the zero value is the paper's
// recommended configuration (pipeline foralls, companion-scheme for-iters,
// optimal balancing). Compilation runs as an explicit pass pipeline:
// Options.Passes names the passes to run (see PassNames), while the legacy
// strategy booleans translate to the equivalent pass list.
type Options = core.Options

// PassStat is one compilation pass's execution record (name, wall time,
// graph sizes before and after).
type PassStat = passes.Stat

// PassNames returns the registered compilation pass names in canonical
// pipeline order, for use in Options.Passes.
func PassNames() []string { return passes.Names() }

// Scheme selectors re-exported for Options.
const (
	ForallPipeline = forall.Pipeline
	ForallParallel = forall.Parallel
	ForIterAuto    = foriter.Auto
	ForIterTodd    = foriter.Todd
	ForIterComp    = foriter.Companion
)

// Unit is a compiled pipe-structured program.
type Unit = core.Unit

// RunResult is the outcome of a graph-level run.
type RunResult = core.RunResult

// Compile parses, type-checks, and compiles a pipe-structured Val program
// into a balanced, fully pipelined instruction graph.
func Compile(src string, opts Options) (*Unit, error) {
	return core.Compile(src, opts)
}

// MachineConfig describes a packet-level machine (PE/FU/AM counts, routing
// network, placement strategy).
type MachineConfig = machine.Config

// Routing network selectors for MachineConfig.Network.
const (
	NetCrossbar  = machine.Crossbar
	NetButterfly = machine.Butterfly
)

// MachineResult is a packet-level run's outcome and statistics.
type MachineResult = machine.Result

// RunMachine executes a compiled unit on the cycle-accurate packet-level
// machine simulator.
func RunMachine(u *Unit, inputs map[string][]Value, cfg MachineConfig) (*MachineResult, error) {
	if err := u.Compiled.SetInputs(inputs); err != nil {
		return nil, err
	}
	return machine.Run(u.Compiled.Graph, cfg)
}

// PredictII returns the analytical initiation-interval bound of a compiled
// unit (maximum cycle ratio of its timing constraints; 2 = fully
// pipelined).
func PredictII(u *Unit) (float64, error) {
	r, err := mcm.PredictII(u.Compiled.Graph)
	if err != nil {
		return 0, err
	}
	return r.Float(), nil
}

// FullyPipelined reports whether a run sustained the architecture's
// maximum rate at the named output.
func FullyPipelined(r *RunResult, output string) bool {
	return r.Exec.FullyPipelined(output)
}

// ExecOptions configures graph-level simulation (exposed for advanced use).
type ExecOptions = exec.Options
