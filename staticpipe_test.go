package staticpipe

import (
	"os"
	"path/filepath"
	"testing"

	"staticpipe/internal/progs"
)

// TestFacadeQuickstart exercises the public API end to end, as the README
// quick start does.
func TestFacadeQuickstart(t *testing.T) {
	src, inputs := example1Program(12)
	u, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := u.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !FullyPipelined(res, "A") {
		t.Errorf("II = %v", res.II("A"))
	}
	if err := u.Validate(inputs, 1e-9); err != nil {
		t.Fatal(err)
	}
	ii, err := PredictII(u)
	if err != nil {
		t.Fatal(err)
	}
	if ii != 2 {
		t.Errorf("predicted II = %v", ii)
	}
	a := res.Outputs["A"]
	if got := Floats(a.Elems); len(got) != 14 {
		t.Errorf("A has %d elements", len(got))
	}
}

func TestFacadeMachine(t *testing.T) {
	src, inputs := fig2Program(32)
	u, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mres, err := RunMachine(u, inputs, MachineConfig{PEs: 4, AMs: 2})
	if err != nil {
		t.Fatal(err)
	}
	eres, err := u.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	mv, ev := mres.Output("Y"), eres.Outputs["Y"].Elems
	if len(mv) != len(ev) {
		t.Fatalf("machine %d vs exec %d outputs", len(mv), len(ev))
	}
	for i := range ev {
		if mv[i] != ev[i] {
			t.Errorf("Y[%d]: machine %v, exec %v", i, mv[i], ev[i])
		}
	}
}

func TestFacadeSchemeConstants(t *testing.T) {
	src, inputs := example2Program(16)
	todd, err := Compile(src, Options{ForIterScheme: ForIterTodd})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compile(src, Options{ForIterScheme: ForIterComp})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := todd.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := comp.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if rt.II("X") != 3 || rc.II("X") != 2 {
		t.Errorf("II todd=%v companion=%v", rt.II("X"), rc.II("X"))
	}
}

// TestFacadeEmptyInputs checks the degenerate zero-length binding through
// the public API: a clean length error, not a hang or panic.
func TestFacadeEmptyInputs(t *testing.T) {
	src, _ := example1Program(12)
	u, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Run(map[string][]Value{"C": {}}); err == nil {
		t.Error("zero-length input stream accepted")
	}
}

// TestFacadePassOptions drives an explicit pass list with per-pass
// verification through the public API.
func TestFacadePassOptions(t *testing.T) {
	names := PassNames()
	if len(names) < 5 {
		t.Fatalf("pass registry too small: %v", names)
	}
	src, inputs := example1Program(12)
	u, err := Compile(src, Options{Passes: "dedup,balance", VerifyEach: true})
	if err != nil {
		t.Fatal(err)
	}
	var stats []PassStat = u.PassStats()
	if len(stats) != 2 || stats[0].Name != "dedup" || stats[1].Name != "balance" {
		t.Fatalf("pass stats = %v", stats)
	}
	if err := u.Validate(inputs, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeValueHelpers(t *testing.T) {
	vs := Ints([]int64{1, 2})
	if vs[1].AsInt() != 2 {
		t.Error("Ints")
	}
	fs := Floats(Reals([]float64{1.5}))
	if fs[0] != 1.5 {
		t.Error("Floats round trip")
	}
}

// TestTestdataCorpus compiles and validates every .val program shipped in
// testdata/ with synthetic inputs — the same files the dfc and dfsim tools
// are documented against.
func TestTestdataCorpus(t *testing.T) {
	files, err := filepath.Glob("testdata/*.val")
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			u, err := Compile(string(src), Options{})
			if err != nil {
				t.Fatal(err)
			}
			inputs := map[string][]Value{}
			for _, in := range u.Checked.Inputs {
				inputs[in.Name] = progs.Synth("sin", in.Len())
			}
			if err := u.Validate(inputs, 1e-9); err != nil {
				t.Fatal(err)
			}
		})
	}
}
